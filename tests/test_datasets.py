"""Tests for the dataset generators, figure instances and workloads."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DBLPConfig,
    DBLP_PAPER_FREQUENCIES,
    PAPER_QUERIES,
    WorkloadQuery,
    XMARK_PAPER_FREQUENCIES,
    XMARK_SCALES,
    XMarkConfig,
    dblp_target_frequencies,
    dblp_workload,
    generate_dblp,
    generate_xmark,
    paper_query,
    publications_tree,
    team_tree,
    validate_workloads,
    workload_for,
    workload_summary,
    xmark_suite,
    xmark_target_frequencies,
    xmark_workload,
)
from repro.index import InvertedIndex


class TestFigureInstances:
    def test_publications_structure(self):
        tree = publications_tree()
        assert tree.node("0").label == "Publications"
        assert tree.node("0.2.0").label == "article"
        assert tree.node("0.2.0.3.0").label == "ref"
        assert tree.node("0.2.1.1").label == "title"

    def test_team_structure(self):
        tree = team_tree()
        assert tree.node("0").label == "team"
        assert tree.node("0.0").text == "Grizzlies"
        positions = [tree.node(f"0.1.{i}.1").text for i in range(3)]
        assert positions == ["forward", "guard", "forward"]

    def test_paper_query_lookup(self):
        assert paper_query("Q3") == PAPER_QUERIES["Q3"]
        with pytest.raises(KeyError):
            paper_query("Q9")

    def test_instances_are_fresh_objects(self):
        assert publications_tree() is not publications_tree()


class TestVocabulary:
    def test_dblp_target_scaling(self):
        targets = dblp_target_frequencies(0.01)
        assert targets["data"] == round(25840 * 0.01)
        assert targets["keyword"] >= 1

    def test_xmark_target_scaling_by_column(self):
        standard = xmark_target_frequencies(0, 0.01)
        data2 = xmark_target_frequencies(2, 0.01)
        assert data2["particle"] >= standard["particle"]
        with pytest.raises(ValueError):
            xmark_target_frequencies(5, 0.01)


class TestDBLPGenerator:
    def test_deterministic(self):
        first = generate_dblp(DBLPConfig(publications=50, seed=3))
        second = generate_dblp(DBLPConfig(publications=50, seed=3))
        assert first.size() == second.size()
        assert [n.label for n in first.iter_preorder()] == \
            [n.label for n in second.iter_preorder()]

    def test_different_seeds_differ(self):
        first = generate_dblp(DBLPConfig(publications=50, seed=3))
        second = generate_dblp(DBLPConfig(publications=50, seed=4))
        first_titles = [n.text for n in first.iter_preorder() if n.label == "title"]
        second_titles = [n.text for n in second.iter_preorder() if n.label == "title"]
        assert first_titles != second_titles

    def test_structure(self):
        tree = generate_dblp(DBLPConfig(publications=30, seed=1))
        assert tree.root.label == "dblp"
        assert tree.root.child_count() == 30
        histogram = tree.label_histogram()
        assert histogram["title"] == 30
        assert histogram["author"] >= 30

    def test_keywords_planted(self):
        tree = generate_dblp(DBLPConfig(publications=200, seed=1,
                                        keyword_scale=0.01))
        index = InvertedIndex(tree)
        # Frequent paper keywords are present and respect the relative order
        # (data is the most frequent keyword in the paper's table).
        assert index.frequency("data") > index.frequency("xml") > 0
        assert index.frequency("keyword") >= 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DBLPConfig(publications=0)
        with pytest.raises(ValueError):
            DBLPConfig(keyword_scale=0.0)


class TestXMarkGenerator:
    def test_deterministic(self):
        first = generate_xmark(XMarkConfig(scale="standard", base_items=15, seed=5))
        second = generate_xmark(XMarkConfig(scale="standard", base_items=15, seed=5))
        assert first.size() == second.size()
        assert [n.label for n in first.iter_preorder()] == \
            [n.label for n in second.iter_preorder()]

    def test_structure_sections(self):
        tree = generate_xmark(XMarkConfig(scale="standard", base_items=10, seed=5))
        assert tree.root.label == "site"
        sections = [child.label for child in tree.root.children]
        assert sections == ["regions", "people", "open_auctions",
                            "closed_auctions", "categories"]

    def test_scales_grow(self):
        suite = xmark_suite(base_items=10, seed=5)
        assert set(suite) == set(XMARK_SCALES)
        sizes = [suite[scale].size() for scale in XMARK_SCALES]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_keyword_frequencies_grow_with_scale(self):
        suite = xmark_suite(base_items=10, seed=5)
        frequencies = {
            scale: InvertedIndex(suite[scale]).frequency("preventions")
            for scale in XMARK_SCALES
        }
        assert frequencies["standard"] < frequencies["data1"] < frequencies["data2"]

    def test_rare_keywords_have_minimum_occurrences(self):
        tree = generate_xmark(XMarkConfig(scale="standard", base_items=10, seed=5))
        index = InvertedIndex(tree)
        for keyword in ("particle", "dominator", "threshold"):
            assert index.frequency(keyword) >= 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            XMarkConfig(scale="huge")
        with pytest.raises(ValueError):
            XMarkConfig(base_items=0)
        with pytest.raises(ValueError):
            XMarkConfig(min_occurrences=0)


class TestWorkloads:
    def test_sizes_match_paper_panels(self):
        assert len(dblp_workload()) == 20
        assert len(xmark_workload()) == 18

    def test_workload_keywords_come_from_published_tables(self):
        validate_workloads()
        for query in dblp_workload():
            assert all(keyword in DBLP_PAPER_FREQUENCIES
                       for keyword in query.keywords)
        for query in xmark_workload():
            assert all(keyword in XMARK_PAPER_FREQUENCIES
                       for keyword in query.keywords)

    def test_query_sizes_cover_two_to_six_keywords(self):
        sizes = {query.size for query in dblp_workload()}
        assert min(sizes) == 2 and max(sizes) >= 6

    def test_labels_unique(self):
        labels = [query.label for query in dblp_workload()]
        assert len(labels) == len(set(labels))

    def test_workload_for(self):
        assert workload_for("dblp")[0].size == 2
        assert workload_for("xmark-data1") == xmark_workload()
        with pytest.raises(ValueError):
            workload_for("unknown")

    def test_workload_query_text(self):
        query = WorkloadQuery(label="xy", keywords=("xml", "keyword"))
        assert query.text == "xml keyword"
        assert query.size == 2

    def test_workload_summary(self):
        rows = workload_summary(dblp_workload()[:3], DBLP_PAPER_FREQUENCIES)
        assert len(rows) == 3
        assert rows[0]["paper_frequencies"][0] == DBLP_PAPER_FREQUENCIES[
            dblp_workload()[0].keywords[0]]
