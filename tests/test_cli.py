"""Tests for the repro-xks command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.xmltree import parse_file


class TestSearchCommand:
    def test_search_paper_query_on_builtin(self, capsys):
        exit_code = main(["search", "--dataset", "figure-1a", "Q3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "fragments: 1" in output
        assert "0.2.0.1 title" in output
        assert "0.2.1.1" not in output  # pruned by ValidRTF

    def test_search_with_maxmatch(self, capsys):
        exit_code = main(["search", "--dataset", "figure-1b", "--algorithm",
                          "maxmatch", "Q4"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "maxmatch" in output

    def test_search_no_text_flag(self, capsys):
        main(["search", "--dataset", "figure-1a", "--no-text", "Q1"])
        output = capsys.readouterr().out
        assert '"' not in output.split("\n", 1)[1]

    def test_search_from_file(self, tmp_path, capsys):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b>xml keyword</b><c>other</c></a>", encoding="utf-8")
        exit_code = main(["search", "--file", str(path), "xml keyword"])
        assert exit_code == 0
        assert "fragments: 1" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_reports_metrics(self, capsys):
        exit_code = main(["compare", "--dataset", "figure-1b", "Q4"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "CFR: 0.000" in output
        assert "Max APR:" in output
        assert "extra pruned 2" in output

    def test_compare_identical_results(self, capsys):
        main(["compare", "--dataset", "figure-1b", "Q5"])
        output = capsys.readouterr().out
        assert "CFR: 1.000" in output


class TestDatasetsCommand:
    def test_describe_single_dataset(self, capsys):
        exit_code = main(["datasets", "--name", "figure-1a"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "figure-1a: 22 nodes" in output

    def test_export_to_xml(self, tmp_path, capsys):
        prefix = str(tmp_path) + "/"
        exit_code = main(["datasets", "--name", "figure-1b", "--output", prefix])
        assert exit_code == 0
        exported = parse_file(tmp_path / "figure-1b.xml")
        assert exported.root.label == "team"


class TestBenchCommand:
    def test_bench_figure5_with_cache(self, capsys):
        exit_code = main(["bench", "--dataset", "dblp", "--figure", "5",
                          "--repetitions", "1", "--cache"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "query cache:" in output
        assert "hits=" in output

    def test_bench_no_cache_prints_no_stats(self, capsys):
        exit_code = main(["bench", "--dataset", "dblp", "--figure", "6",
                          "--repetitions", "1", "--no-cache"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "query cache:" not in output

    def test_bench_rejects_non_positive_cache_size(self, capsys):
        exit_code = main(["bench", "--dataset", "dblp", "--figure", "5",
                          "--repetitions", "1", "--cache", "--cache-size", "0"])
        assert exit_code == 2
        assert "positive" in capsys.readouterr().err


class TestArgumentHandling:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["search", "--dataset", "unknown", "xml"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["search", "--dataset", "figure-1a", "--algorithm", "bogus", "xml"])
