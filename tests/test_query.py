"""Tests for the Query value object and its bitmask helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import EmptyQueryError, Query, as_query, subset_masks


class TestParsing:
    def test_parse_string(self):
        query = Query.parse("XML Keyword Search")
        assert query.keywords == ("xml", "keyword", "search")
        assert str(query) == "xml keyword search"

    def test_parse_list(self):
        assert Query.parse(["Liu", "keyword"]).keywords == ("liu", "keyword")

    def test_parse_query_passthrough(self):
        query = Query.parse("xml keyword")
        assert Query.parse(query) is query

    def test_duplicates_removed(self):
        assert Query.parse("xml XML xml keyword").keywords == ("xml", "keyword")

    def test_stop_words_do_not_vanish_entirely(self):
        # A query that is nothing but stop words still keeps a keyword form.
        query = Query.parse("the of")
        assert len(query) >= 1

    def test_empty_query_rejected(self):
        with pytest.raises(EmptyQueryError):
            Query.parse("   ")
        with pytest.raises(EmptyQueryError):
            Query(())
        with pytest.raises(EmptyQueryError):
            Query(("xml", "xml"))

    def test_as_query(self):
        assert as_query("xml keyword").size == 2


class TestBitmasks:
    def test_full_mask_and_size(self):
        query = Query.parse("a1 b2 c3")
        assert query.size == 3
        assert query.full_mask == 0b111

    def test_bit_of_and_mask_of(self):
        query = Query.parse("xml keyword search")
        assert query.bit_of("xml") == 1
        assert query.bit_of("search") == 4
        assert query.mask_of(["keyword", "search"]) == 0b110
        assert query.mask_of(["missing"]) == 0
        assert query.bit_index() == {"xml": 0, "keyword": 1, "search": 2}

    def test_keywords_of_and_covers(self):
        query = Query.parse("xml keyword search")
        assert query.keywords_of(0b101) == {"xml", "search"}
        assert query.covers(0b111)
        assert not query.covers(0b011)

    def test_contains_and_iter(self):
        query = Query.parse("xml keyword")
        assert "xml" in query and "missing" not in query
        assert list(query) == ["xml", "keyword"]


class TestExtension:
    def test_extended_adds_keyword(self):
        query = Query.parse("xml keyword")
        extended = query.extended("Search")
        assert extended.keywords == ("xml", "keyword", "search")
        # The original is unchanged (frozen dataclass).
        assert query.size == 2

    def test_extended_ignores_existing(self):
        query = Query.parse("xml keyword")
        assert query.extended("XML") is query


class TestSubsetMasks:
    def test_enumerates_non_empty_submasks(self):
        assert sorted(subset_masks(0b101)) == [0b001, 0b100, 0b101]
        assert subset_masks(0) == []

    @given(st.integers(min_value=1, max_value=255))
    def test_count_matches_powerset(self, mask):
        submasks = subset_masks(mask)
        bits = bin(mask).count("1")
        assert len(submasks) == 2 ** bits - 1
        assert all(sub & mask == sub for sub in submasks)
        assert len(set(submasks)) == len(submasks)
