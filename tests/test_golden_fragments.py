"""Golden regression: paper-example fragments diff against stored truth.

Unlike the parity suite (which compares backends *against each other*), these
tests compare every backend against the fragment sets checked in under
``tests/golden/`` — so a refactor that breaks all backends identically still
fails here.  The golden files were generated from the memory backend at the
point the paper-example tests (``tests/test_paper_examples.py``) last held.
"""

from __future__ import annotations

import pytest

from golden_loader import golden_datasets, load_golden, result_payload
from repro.core import ALGORITHM_NAMES
from repro.datasets import publications_tree, team_tree
from test_backend_parity import BACKENDS, build_engine

_TREES = {"publications": publications_tree, "team": team_tree}


def test_golden_files_exist():
    assert golden_datasets() == ["corpus3", "corpus_ranked",
                                 "corpus_updated", "publications", "team"]


@pytest.fixture(scope="module")
def golden_engines():
    return {(dataset, backend): build_engine(_TREES[dataset](), backend, dataset)
            for dataset in _TREES
            for backend in BACKENDS}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dataset", sorted(_TREES))
def test_fragments_match_stored_truth(golden_engines, dataset, backend):
    golden = load_golden(dataset)
    engine = golden_engines[(dataset, backend)]
    for query_name, entry in golden["queries"].items():
        for algorithm in ALGORITHM_NAMES:
            expected = entry["algorithms"][algorithm]
            result = engine.search(entry["text"], algorithm)
            assert result_payload(result) == expected, \
                (dataset, query_name, algorithm, backend)


def test_golden_covers_every_algorithm():
    for dataset in golden_datasets():
        for entry in load_golden(dataset)["queries"].values():
            assert sorted(entry["algorithms"]) == sorted(ALGORITHM_NAMES)
