"""Tests for the getRTF stage: keyword-node dispatch and RTF construction."""

from __future__ import annotations

import pytest

from repro.core import Query, assign_keyword_nodes, build_rtfs
from repro.index import InvertedIndex
from repro.lca import elca_is_slca, indexed_stack_elca
from repro.xmltree import DeweyCode

D = DeweyCode.parse


class TestAssignKeywordNodes:
    def test_nearest_enclosing_lca_wins(self):
        lca_nodes = [D("0"), D("0.2"), D("0.2.1")]
        lists = {"w1": [D("0.2.1.5"), D("0.2.0"), D("0.1")],
                 "w2": [D("0.2.1.5")]}
        assignment = assign_keyword_nodes(lca_nodes, lists)
        assert [str(code) for code in assignment[D("0.2.1")]] == ["0.2.1.5"]
        assert [str(code) for code in assignment[D("0.2")]] == ["0.2.0"]
        assert [str(code) for code in assignment[D("0")]] == ["0.1"]

    def test_keyword_node_equal_to_lca(self):
        assignment = assign_keyword_nodes([D("0.1")], {"w1": [D("0.1")]})
        assert assignment[D("0.1")] == [D("0.1")]

    def test_unassigned_keyword_nodes_dropped(self):
        assignment = assign_keyword_nodes([D("0.1")], {"w1": [D("0.2")]})
        assert assignment[D("0.1")] == []

    def test_duplicate_keyword_nodes_counted_once(self):
        assignment = assign_keyword_nodes(
            [D("0")], {"w1": [D("0.1")], "w2": [D("0.1")]})
        assert assignment[D("0")] == [D("0.1")]

    def test_every_requested_root_present(self):
        assignment = assign_keyword_nodes([D("0.1"), D("0.2")],
                                          {"w1": [D("0.1.0")]})
        assert set(assignment) == {D("0.1"), D("0.2")}


class TestBuildRtfs:
    @pytest.fixture
    def q2_pieces(self, publications):
        query = Query.parse("Liu keyword")
        lists = InvertedIndex(publications).keyword_nodes(query.keywords)
        roots = indexed_stack_elca(lists)
        return publications, query, lists, roots

    def test_one_fragment_per_interesting_lca(self, q2_pieces):
        tree, query, lists, roots = q2_pieces
        fragments = build_rtfs(tree, query, roots, lists, elca_is_slca(roots))
        assert [str(fragment.root) for fragment in fragments] == \
            ["0.2.0", "0.2.0.3.0"]

    def test_slca_flags(self, q2_pieces):
        tree, query, lists, roots = q2_pieces
        fragments = build_rtfs(tree, query, roots, lists, elca_is_slca(roots))
        flags = {str(f.root): f.is_slca for f in fragments}
        assert flags == {"0.2.0": False, "0.2.0.3.0": True}

    def test_slca_flags_derived_when_missing(self, q2_pieces):
        tree, query, lists, roots = q2_pieces
        fragments = build_rtfs(tree, query, roots, lists)
        flags = {str(f.root): f.is_slca for f in fragments}
        assert flags == {"0.2.0": False, "0.2.0.3.0": True}

    def test_fragment_nodes_are_paths(self, q2_pieces):
        tree, query, lists, roots = q2_pieces
        fragments = build_rtfs(tree, query, roots, lists)
        article_fragment = fragments[0]
        assert [str(code) for code in article_fragment.nodes] == \
            ["0.2.0", "0.2.0.0", "0.2.0.0.0", "0.2.0.0.0.0", "0.2.0.1", "0.2.0.2"]

    def test_every_fragment_covers_the_query(self, q2_pieces):
        tree, query, lists, roots = q2_pieces
        index = InvertedIndex(tree)
        for fragment in build_rtfs(tree, query, roots, lists):
            covered = set()
            for dewey in fragment.keyword_nodes:
                covered |= {keyword for keyword in query.keywords
                            if keyword in index.node_words(dewey)}
            assert covered == set(query.keywords)

    def test_fragments_partition_assigned_keyword_nodes(self, q2_pieces):
        tree, query, lists, roots = q2_pieces
        fragments = build_rtfs(tree, query, roots, lists)
        seen = set()
        for fragment in fragments:
            overlap = seen & set(fragment.keyword_nodes)
            assert not overlap
            seen |= set(fragment.keyword_nodes)

    def test_no_roots_yields_no_fragments(self, publications):
        query = Query.parse("xml")
        assert build_rtfs(publications, query, [], {"xml": []}) == []
