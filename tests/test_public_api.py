"""The public API surface: everything advertised in ``__all__`` exists."""

from __future__ import annotations

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.xmltree",
    "repro.text",
    "repro.index",
    "repro.storage",
    "repro.lca",
    "repro.core",
    "repro.datasets",
    "repro.bench",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    assert hasattr(module, "__all__") and module.__all__
    for name in module.__all__:
        assert hasattr(module, name), f"{package_name}.{name} is advertised but missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_no_duplicate_exports(package_name):
    module = importlib.import_module(package_name)
    assert len(module.__all__) == len(set(module.__all__))


def test_version_string():
    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(part.isdigit() for part in parts)


def test_top_level_quickstart_surface():
    # The names the README quickstart relies on.
    for name in ("SearchEngine", "parse_string", "parse_file", "Query",
                 "ValidRTF", "MaxMatch", "publications_tree", "team_tree"):
        assert hasattr(repro, name)


def test_public_classes_have_docstrings():
    for name in repro.__all__:
        member = getattr(repro, name)
        if isinstance(member, type) or callable(member):
            assert getattr(member, "__doc__", None), f"{name} lacks a docstring"
