"""Replay of the paper's worked examples (Examples 1–7, Figures 2–4).

These are the headline reproduction tests: every qualitative claim the paper
makes about Q1–Q5 on the Figure 1 instances is asserted here, for both the
revised MaxMatch baseline and ValidRTF.
"""

from __future__ import annotations


from repro.datasets import PAPER_QUERIES
from repro.xmltree import DeweyCode

D = DeweyCode.parse


def kept(result, root):
    fragment = result.by_root()[D(root)]
    return sorted(str(code) for code in fragment.kept_nodes)


class TestExample1SlcaVsLca:
    def test_q2_slca_node_is_ref(self, publications_engine):
        roots = publications_engine.lca_nodes(PAPER_QUERIES["Q2"], "maxmatch-slca")
        assert [str(code) for code in roots] == ["0.2.0.3.0"]

    def test_q2_lca_node_article_also_interesting(self, publications_engine):
        roots = publications_engine.lca_nodes(PAPER_QUERIES["Q2"], "validrtf")
        assert [str(code) for code in roots] == ["0.2.0", "0.2.0.3.0"]

    def test_q3_only_lca_is_the_root(self, publications_engine):
        roots = publications_engine.lca_nodes(PAPER_QUERIES["Q3"], "validrtf")
        assert [str(code) for code in roots] == ["0"]


class TestExample2MaxMatchProblems:
    def test_q5_positive_example(self, team_engine):
        """Figure 3(a): MaxMatch keeps only the Gassol player for Q5."""
        result = team_engine.search(PAPER_QUERIES["Q5"], "maxmatch")
        assert kept(result, "0") == \
            ["0", "0.0", "0.1", "0.1.0", "0.1.0.0", "0.1.0.1"]

    def test_q1_false_positive_problem(self, publications_engine):
        """Figure 3(c): MaxMatch wrongly discards the title node for Q1."""
        result = publications_engine.search(PAPER_QUERIES["Q1"], "maxmatch")
        nodes = kept(result, "0.2.1")
        assert "0.2.1.1" not in nodes
        assert "0.2.1.2" in nodes

    def test_q4_redundancy_problem(self, team_engine):
        """Figure 3(d): MaxMatch keeps both "forward" players for Q4."""
        result = team_engine.search(PAPER_QUERIES["Q4"], "maxmatch")
        nodes = kept(result, "0")
        assert "0.1.0.1" in nodes and "0.1.2.1" in nodes and "0.1.1.1" in nodes


class TestExample5ValidContributor:
    def test_q5_covers_the_positive_example(self, team_engine):
        """ValidRTF returns the same Figure 3(a) fragment for Q5."""
        result = team_engine.search(PAPER_QUERIES["Q5"], "validrtf")
        assert kept(result, "0") == \
            ["0", "0.0", "0.1", "0.1.0", "0.1.0.0", "0.1.0.1"]

    def test_q1_false_positive_fixed(self, publications_engine):
        """Figure 3(b): ValidRTF keeps the uniquely-labelled title node."""
        result = publications_engine.search(PAPER_QUERIES["Q1"], "validrtf")
        assert kept(result, "0.2.1") == [
            "0.2.1", "0.2.1.0", "0.2.1.0.0", "0.2.1.0.0.0",
            "0.2.1.0.1", "0.2.1.0.1.0", "0.2.1.1", "0.2.1.2",
        ]

    def test_q4_redundancy_fixed(self, team_engine):
        """ValidRTF keeps one "forward" and one "guard" position for Q4."""
        result = team_engine.search(PAPER_QUERIES["Q4"], "validrtf")
        nodes = kept(result, "0")
        assert "0.1.0.1" in nodes and "0.1.1.1" in nodes
        assert "0.1.2" not in nodes and "0.1.2.1" not in nodes

    def test_q3_meaningful_rtf(self, publications_engine):
        """Figure 2(d): the meaningful RTF for Q3 drops the skyline article."""
        result = publications_engine.search(PAPER_QUERIES["Q3"], "validrtf")
        assert kept(result, "0") == [
            "0", "0.0", "0.2", "0.2.0", "0.2.0.1", "0.2.0.2",
            "0.2.0.3", "0.2.0.3.0",
        ]


class TestExample6FirstStages:
    def test_q3_keyword_node_sets(self, publications_engine):
        lists = publications_engine.keyword_nodes(PAPER_QUERIES["Q3"])
        as_strings = {keyword: [str(code) for code in deweys]
                      for keyword, deweys in lists.items()}
        assert as_strings == {
            "vldb": ["0.0"],
            "title": ["0.0", "0.2.0.1", "0.2.1.1"],
            "xml": ["0.2.0.1", "0.2.0.2", "0.2.0.3.0"],
            "keyword": ["0.2.0.1", "0.2.0.2", "0.2.0.3.0"],
            "search": ["0.2.0.1", "0.2.0.2", "0.2.0.3.0"],
        }

    def test_q3_raw_rtf_keyword_nodes(self, publications_engine):
        raw = publications_engine.algorithm("validrtf").raw_fragments(
            PAPER_QUERIES["Q3"])
        assert len(raw) == 1
        assert [str(code) for code in raw[0].keyword_nodes] == \
            ["0.0", "0.2.0.1", "0.2.0.2", "0.2.0.3.0", "0.2.1.1"]


class TestExample7Pruning:
    def test_articles_child_0_2_1_is_pruned(self, publications_engine):
        """Example 7: child 0.2.1's key number is covered by 0.2.0's."""
        result = publications_engine.search(PAPER_QUERIES["Q3"], "validrtf")
        nodes = kept(result, "0")
        assert "0.2.1" not in nodes and "0.2.1.1" not in nodes

    def test_root_children_with_distinct_labels_kept(self, publications_engine):
        result = publications_engine.search(PAPER_QUERIES["Q3"], "validrtf")
        nodes = kept(result, "0")
        assert "0.0" in nodes and "0.2" in nodes


class TestQ2Fragments:
    def test_two_rtfs_returned(self, publications_engine):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        assert [str(code) for code in result.roots()] == ["0.2.0", "0.2.0.3.0"]

    def test_figure_2a_slca_fragment(self, publications_engine):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        assert kept(result, "0.2.0.3.0") == ["0.2.0.3.0"]

    def test_figure_2b_lca_fragment(self, publications_engine):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        assert kept(result, "0.2.0") == [
            "0.2.0", "0.2.0.0", "0.2.0.0.0", "0.2.0.0.0.0", "0.2.0.1", "0.2.0.2",
        ]

    def test_slca_flags_on_fragments(self, publications_engine):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        flags = {str(f.root): f.is_slca for f in result}
        assert flags == {"0.2.0": False, "0.2.0.3.0": True}


class TestCfrBehaviour:
    def test_q1_validrtf_and_maxmatch_differ(self, publications_engine):
        outcome = publications_engine.compare(PAPER_QUERIES["Q1"])
        assert outcome.report.cfr < 1.0
        # The difference is a false-positive fix: ValidRTF keeps more nodes,
        # it does not prune more.
        assert outcome.report.max_apr == 0.0

    def test_q4_validrtf_prunes_more(self, team_engine):
        outcome = team_engine.compare(PAPER_QUERIES["Q4"])
        assert outcome.report.cfr < 1.0
        assert outcome.report.max_apr > 0.0

    def test_q5_identical_results(self, team_engine):
        outcome = team_engine.compare(PAPER_QUERIES["Q5"])
        assert outcome.report.cfr == 1.0
