"""Tiny loader for the golden fragment fixtures under ``tests/golden/``.

A golden file stores, per paper query and algorithm, the expected LCA node
list and the expected fragments (root, SLCA flag, kept node set) as plain
strings.  Refactors — in particular new posting backends — diff against this
stored truth instead of against each other, so a bug that shifts *every*
backend the same way still fails the suite.

Regenerate (only when the expected semantics intentionally change) by
serializing a memory-backend :class:`SearchEngine` result with
:func:`result_payload` and writing it back with :func:`save_golden`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

GOLDEN_DIR = Path(__file__).parent / "golden"


def golden_datasets():
    """The dataset names with a checked-in golden file."""
    return sorted(path.stem for path in GOLDEN_DIR.glob("*.json"))


def load_golden(dataset: str) -> Dict:
    """The golden payload of one dataset."""
    return json.loads((GOLDEN_DIR / f"{dataset}.json").read_text())


def result_payload(result) -> Dict:
    """Serialize one SearchResult the way the golden files store it."""
    return {
        "lca_nodes": [str(code) for code in result.lca_nodes],
        "fragments": [
            {
                "root": str(fragment.root),
                "is_slca": fragment.is_slca,
                "kept": [str(code) for code in fragment.kept_nodes],
            }
            for fragment in result.fragments
        ],
    }


def corpus_result_payload(result) -> Dict:
    """Serialize one CorpusSearchResult the way the corpus golden stores it.

    One entry per contributing document (corpus order), each holding the
    single-document :func:`result_payload` under its doc id.
    """
    return {
        "documents": [
            {"doc": entry.doc_id, **result_payload(entry.result)}
            for entry in result.documents
        ],
    }


def save_golden(dataset: str, payload: Dict) -> Path:
    """Write one dataset's golden payload (used only when regenerating)."""
    path = GOLDEN_DIR / f"{dataset}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
