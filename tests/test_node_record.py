"""Tests for the Section 4.1 node data structure and the constructing step."""

from __future__ import annotations

import pytest

from repro.core import Query, build_fragment, build_record_tree
from repro.text import ContentAnalyzer
from repro.xmltree import DeweyCode

D = DeweyCode.parse


@pytest.fixture
def q3_records(publications):
    """The record tree of the Q3 RTF (Example 7 / Figure 4(b))."""
    query = Query.parse("VLDB title XML keyword search")
    fragment = build_fragment(
        publications, D("0"),
        ["0.0", "0.2.0.1", "0.2.0.2", "0.2.0.3.0", "0.2.1.1"],
    )
    analyzer = ContentAnalyzer(publications)
    records = build_record_tree(publications, analyzer, query, fragment)
    return query, records


class TestConstructingStep:
    def test_one_record_per_fragment_node(self, q3_records):
        query, records = q3_records
        assert records.size() == records.fragment.size
        assert records.root.dewey == D("0")

    def test_keyword_masks_aggregate_upwards(self, q3_records):
        query, records = q3_records
        # 0.2 sees title/xml/keyword/search through its descendants but not vldb.
        articles = records.record(D("0.2"))
        assert query.keywords_of(articles.keyword_mask) == \
            {"title", "xml", "keyword", "search"}
        # 0.2.1 only contributes "title".
        assert query.keywords_of(records.record(D("0.2.1")).keyword_mask) == {"title"}
        # The root sees every keyword (Example 7: key number covers the query).
        assert query.covers(records.record(D("0")).keyword_mask)

    def test_leaf_keyword_node_mask_is_its_own_content(self, q3_records):
        query, records = q3_records
        title_record = records.record(D("0.2.0.1"))
        assert title_record.is_keyword_node
        assert query.keywords_of(title_record.keyword_mask) == \
            {"title", "xml", "keyword", "search"}

    def test_internal_path_nodes_are_not_keyword_nodes(self, q3_records):
        query, records = q3_records
        assert not records.record(D("0.2")).is_keyword_node
        assert not records.record(D("0.2.0.3")).is_keyword_node

    def test_content_words_union_of_keyword_node_contents(self, q3_records):
        query, records = q3_records
        article_record = records.record(D("0.2.0"))
        # The article's RTF keyword nodes are title, abstract and ref; their
        # word sets all flow into the ancestor record.
        assert {"reasoning", "keyword", "xml", "sigmod"} <= article_record.content_words

    def test_content_feature_is_min_max_pair(self, q3_records):
        query, records = q3_records
        record = records.record(D("0.2.0.1"))
        feature = record.content_feature
        assert isinstance(feature, tuple) and len(feature) == 2
        ordered = sorted(record.content_words)
        assert feature == (ordered[0], ordered[-1])

    def test_tree_keyword_set_decodes_mask(self, q3_records):
        query, records = q3_records
        assert records.record(D("0.2.1")).tree_keyword_set(query) == {"title"}

    def test_empty_content_feature(self, q3_records):
        query, records = q3_records
        # A pure path node with no keyword node in its subtree would have an
        # empty feature; simulate by checking the default of a fresh record.
        from repro.core import NodeRecord
        empty = NodeRecord(dewey=D("0.9"), label="x")
        assert empty.content_feature == ("", "")


class TestChildrenInfo:
    def test_label_groups(self, q3_records):
        query, records = q3_records
        articles = records.record(D("0.2"))
        groups = articles.label_groups()
        assert [group.label for group in groups] == ["article"]
        assert groups[0].counter == 2
        assert groups[0].key_numbers() == sorted(
            child.key_number for child in groups[0].children)

    def test_group_for(self, q3_records):
        query, records = q3_records
        root_record = records.record(D("0"))
        assert root_record.group_for("title").counter == 1
        assert root_record.group_for("Articles").counter == 1
        assert root_record.group_for("missing") is None

    def test_children_sorted_in_document_order(self, q3_records):
        query, records = q3_records
        for record in records.root.iter_records():
            deweys = [child.dewey for child in record.children]
            assert deweys == sorted(deweys)

    def test_iter_records_covers_fragment(self, q3_records):
        query, records = q3_records
        visited = {record.dewey for record in records.root.iter_records()}
        assert visited == set(records.fragment.nodes)


class TestCidModes:
    def test_exact_mode_uses_full_sets(self, publications):
        query = Query.parse("Liu keyword")
        fragment = build_fragment(publications, D("0.2.0"),
                                  ["0.2.0.0.0.0", "0.2.0.1", "0.2.0.2"])
        analyzer = ContentAnalyzer(publications)
        records = build_record_tree(publications, analyzer, query, fragment,
                                    cid_mode="exact")
        feature = records.record(D("0.2.0.1")).content_feature
        assert isinstance(feature, frozenset)

    def test_unknown_mode_rejected(self, publications):
        query = Query.parse("Liu keyword")
        fragment = build_fragment(publications, D("0.2.0"), ["0.2.0.1"])
        analyzer = ContentAnalyzer(publications)
        with pytest.raises(ValueError):
            build_record_tree(publications, analyzer, query, fragment,
                              cid_mode="bogus")
