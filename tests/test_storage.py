"""Tests for the relational shredding store (schema, shredder, both backends)."""

from __future__ import annotations

import pytest

from repro.core import SearchEngine
from repro.storage import (
    DocumentAlreadyStored,
    DocumentNotFound,
    MemoryStore,
    SQLitePostingSource,
    SQLiteStore,
    StoredDocumentSearch,
    agreement_with_index,
    decode_dewey,
    encode_dewey,
    shred_tree,
)
from repro.datasets import PAPER_QUERIES
from repro.xmltree import DeweyCode

D = DeweyCode.parse

BACKENDS = [MemoryStore, SQLiteStore]


class TestDeweyEncoding:
    def test_round_trip(self):
        components = (0, 2, 10, 3)
        assert decode_dewey(encode_dewey(components)) == components

    def test_string_order_matches_document_order(self):
        first = encode_dewey((0, 2))
        second = encode_dewey((0, 10))
        assert first < second  # zero padding keeps 2 < 10


class TestShredder:
    def test_row_counts(self, publications):
        shredded = shred_tree(publications, "pub")
        assert shredded.name == "pub"
        assert shredded.node_count == publications.size()
        assert shredded.value_count > 0
        assert len(shredded.labels) == len(publications.labels())

    def test_label_number_sequence_matches_depth(self, publications):
        shredded = shred_tree(publications, "pub")
        by_dewey = {row.dewey: row for row in shredded.elements}
        row = by_dewey[encode_dewey((0, 2, 0, 1))]
        assert row.level == 3
        assert len(row.label_number_sequence.split(".")) == 4

    def test_content_feature_is_min_max(self, publications):
        shredded = shred_tree(publications, "pub")
        by_dewey = {row.dewey: row for row in shredded.elements}
        row = by_dewey[encode_dewey((0, 0))]
        assert row.content_feature_min <= row.content_feature_max

    def test_value_rows_split_by_origin(self, team):
        shredded = shred_tree(team, "team")
        name_rows = [row for row in shredded.values
                     if row.dewey == encode_dewey((0, 0))]
        origins = {row.attribute for row in name_rows}
        assert "" in origins          # label word
        assert "#text" in origins     # text word


@pytest.mark.parametrize("backend_class", BACKENDS)
class TestBackends:
    def test_store_and_stats(self, backend_class, publications):
        store = backend_class()
        store.store_tree(publications, "pub")
        stats = store.document_stats("pub")
        assert stats["nodes"] == publications.size()
        assert stats["labels"] == len(publications.labels())
        assert store.documents() == ["pub"]

    def test_duplicate_name_rejected(self, backend_class, publications):
        store = backend_class()
        store.store_tree(publications, "pub")
        with pytest.raises(DocumentAlreadyStored):
            store.store_tree(publications, "pub")

    def test_missing_document_raises(self, backend_class):
        store = backend_class()
        with pytest.raises(DocumentNotFound):
            store.document_stats("missing")
        with pytest.raises(DocumentNotFound):
            store.keyword_deweys("missing", "xml")

    def test_keyword_lookup_matches_paper_lists(self, backend_class, publications):
        store = backend_class()
        store.store_tree(publications, "pub")
        assert [str(code) for code in store.keyword_deweys("pub", "liu")] == \
            ["0.2.0.0.0.0", "0.2.0.3.0"]
        assert [str(code) for code in store.keyword_deweys("pub", "VLDB")] == ["0.0"]
        assert store.keyword_deweys("pub", "absent") == []

    def test_keyword_nodes_for_query(self, backend_class, publications):
        store = backend_class()
        store.store_tree(publications, "pub")
        lists = store.keyword_nodes("pub", ["Liu", "keyword"])
        assert set(lists) == {"liu", "keyword"}
        assert len(lists["keyword"]) == 3

    def test_frequency_and_labels(self, backend_class, publications):
        store = backend_class()
        store.store_tree(publications, "pub")
        assert store.keyword_frequency("pub", "title") == 3
        assert "article" in store.labels("pub")
        assert store.label_of("pub", D("0.2.0")) == "article"
        assert store.label_of("pub", D("0.9.9")) is None

    def test_drop_document(self, backend_class, publications):
        store = backend_class()
        store.store_tree(publications, "pub")
        store.drop_document("pub")
        assert store.documents() == []
        with pytest.raises(DocumentNotFound):
            store.drop_document("pub")

    def test_agreement_with_inverted_index(self, backend_class, publications):
        store = backend_class()
        store.store_tree(publications, "pub")
        agreement = agreement_with_index(
            publications, store, "pub",
            ["xml", "keyword", "liu", "vldb", "skyline", "article"])
        assert all(agreement.values())

    def test_multiple_documents(self, backend_class, publications, team):
        store = backend_class()
        store.store_tree(publications, "pub")
        store.store_tree(team, "team")
        assert store.documents() == ["pub", "team"]
        assert store.keyword_frequency("team", "position") == 3
        assert store.keyword_frequency("pub", "position") == 0


@pytest.mark.parametrize("backend_class", BACKENDS)
class TestKeywordImpact:
    def test_impact_agrees_with_posting_scan(self, backend_class,
                                             publications):
        from repro.index import impact_from_postings

        store = backend_class()
        store.store_tree(publications, "pub")
        for keyword in ("liu", "xml", "keyword", "vldb", "article"):
            impact = store.keyword_impact("pub", keyword)
            expected = impact_from_postings(
                store.keyword_deweys("pub", keyword))
            assert impact == expected
            assert impact.count == store.keyword_frequency("pub", keyword)

    def test_absent_keyword_impact_is_empty(self, backend_class,
                                            publications):
        from repro.index import EMPTY_IMPACT

        store = backend_class()
        store.store_tree(publications, "pub")
        impact = store.keyword_impact("pub", "absent")
        assert impact == EMPTY_IMPACT
        assert impact.empty

    def test_missing_document_raises(self, backend_class):
        store = backend_class()
        with pytest.raises(DocumentNotFound):
            store.keyword_impact("missing", "xml")


class TestSQLiteSpecifics:
    def test_file_database_persists(self, tmp_path, publications):
        path = tmp_path / "store.db"
        with SQLiteStore(path) as store:
            store.store_tree(publications, "pub")
        with SQLiteStore(path) as reopened:
            assert reopened.documents() == ["pub"]
            assert reopened.keyword_frequency("pub", "xml") == 3

    def test_label_number_sequence_query(self, publications):
        with SQLiteStore() as store:
            store.store_tree(publications, "pub")
            sequence = store.label_number_sequence("pub", D("0.2.0"))
            assert sequence is not None
            assert len(sequence.split(".")) == 3
            assert store.label_number_sequence("pub", D("0.9")) is None

    def test_legacy_sentinel_rows_recompute_impact(self, tmp_path,
                                                   publications):
        # Rows written before the impact-metadata column carry the -1
        # sentinel; the impact must then come from a lazy posting scan.
        import sqlite3

        from repro.index import impact_from_postings

        path = tmp_path / "legacy.db"
        with SQLiteStore(path) as store:
            store.store_tree(publications, "pub")
        with sqlite3.connect(path) as connection:
            connection.execute("UPDATE posting SET max_depth = -1")
        with SQLiteStore(path) as reopened:
            impact = reopened.keyword_impact("pub", "liu")
            assert impact == impact_from_postings(
                reopened.keyword_deweys("pub", "liu"))
            assert not impact.empty

    def test_impact_column_added_to_pre_impact_database(self, tmp_path,
                                                        publications):
        # Opening a database created before the max_depth column migrates
        # it in place (ALTER TABLE with the sentinel default).
        import sqlite3

        path = tmp_path / "old.db"
        with SQLiteStore(path) as store:
            store.store_tree(publications, "pub")
        with sqlite3.connect(path) as connection:
            connection.execute("ALTER TABLE posting DROP COLUMN max_depth")
        with SQLiteStore(path) as reopened:
            columns = {row[1] for row in reopened._connection.execute(
                "PRAGMA table_info(posting)")}
            assert "max_depth" in columns
            impact = reopened.keyword_impact("pub", "liu")
            assert impact.count == reopened.keyword_frequency("pub", "liu")


class TestStoredDocumentSearch:
    def test_search_matches_engine(self, publications, publications_engine):
        search = StoredDocumentSearch(publications, SQLiteStore(), "pub")
        for query_name in ("Q1", "Q2", "Q3"):
            query = PAPER_QUERIES[query_name]
            stored_result = search.search(query, "validrtf")
            engine_result = publications_engine.search(query, "validrtf")
            assert stored_result.roots() == engine_result.roots()
            stored_nodes = [fragment.kept_set() for fragment in stored_result]
            engine_nodes = [fragment.kept_set() for fragment in engine_result]
            assert stored_nodes == engine_nodes

    def test_maxmatch_via_store(self, team):
        search = StoredDocumentSearch(team, MemoryStore(), "team")
        result = search.search(PAPER_QUERIES["Q4"], "maxmatch")
        assert result.count == 1
        assert result.algorithm == "maxmatch@store"

    def test_unknown_algorithm_rejected(self, team):
        search = StoredDocumentSearch(team, MemoryStore(), "team")
        with pytest.raises(ValueError):
            search.search("grizzlies", "bogus")

    def test_frequency_report(self, publications):
        search = StoredDocumentSearch(publications, MemoryStore(), "pub")
        report = search.frequency_report(["xml", "vldb", "absent"])
        assert report == {"xml": 3, "vldb": 1, "absent": 0}

    def test_reuses_existing_document(self, publications):
        store = MemoryStore()
        store.store_tree(publications, "pub")
        search = StoredDocumentSearch(publications, store, "pub")
        assert search.keyword_nodes("xml")["xml"]


# ---------------------------------------------------------------------- #
# Multi-threaded store use (the serving layer's worker pool)
# ---------------------------------------------------------------------- #
class TestSQLiteStoreThreading:
    def test_per_thread_connections_share_one_database(self, publications,
                                                       publications_engine):
        """Worker threads searching one shared SQLiteStore agree with the
        in-memory engine — every thread gets its own connection but sees the
        same (shared-cache) database."""
        import threading

        store = SQLiteStore()
        store.store_tree(publications, "pub")
        expected = {
            name: publications_engine.search(PAPER_QUERIES[name]).roots()
            for name in ("Q1", "Q2", "Q3")
        }
        errors = []

        def work() -> None:
            try:
                engine = SearchEngine(source=SQLitePostingSource(store, "pub"))
                for name, roots in expected.items():
                    assert engine.search(PAPER_QUERIES[name]).roots() == roots
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=work) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        store.close()

    def test_memory_stores_stay_distinct(self, publications):
        """Two ``:memory:`` stores never alias one shared-cache database."""
        first = SQLiteStore()
        first.store_tree(publications, "pub")
        second = SQLiteStore()
        assert second.documents() == []
        assert first.documents() == ["pub"]
        first.close()
        second.close()

    def test_file_store_reopens_across_threads(self, publications, tmp_path):
        """A file-backed store built on one thread serves another thread."""
        import threading

        path = tmp_path / "threaded.db"
        store = SQLiteStore(path)
        store.store_tree(publications, "pub")
        seen = {}

        def read() -> None:
            seen["docs"] = store.documents()
            seen["freq"] = store.keyword_frequency("pub", "xml")

        thread = threading.Thread(target=read)
        thread.start()
        thread.join()
        assert seen == {"docs": ["pub"], "freq": 3}
        store.close()
