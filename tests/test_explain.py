"""Tests for the pruning-explanation layer (repro.core.explain)."""

from __future__ import annotations

import pytest

from repro.core import (
    Decision,
    DifferenceKind,
    Query,
    classify_differences,
    explain_contributor,
    explain_valid_contributor,
    prune_with_contributor,
    prune_with_valid_contributor,
    render_explanation,
)
from repro.core.errors import UnknownAlgorithmError
from repro.datasets import PAPER_QUERIES
from repro.xmltree import DeweyCode

D = DeweyCode.parse


def _record_trees(engine, query_text):
    pipeline = engine.algorithm("validrtf")
    query = Query.parse(query_text)
    return query, [pipeline.record_tree(query, fragment)
                   for fragment in pipeline.raw_fragments(query)]


class TestExplainValidContributor:
    def test_decisions_cover_every_fragment_node(self, publications_engine):
        query, record_trees = _record_trees(publications_engine,
                                            PAPER_QUERIES["Q3"])
        explanation = explain_valid_contributor(record_trees[0], query)
        assert {decision.dewey for decision in explanation.decisions} == \
            set(record_trees[0].fragment.nodes)

    def test_kept_set_matches_pruner(self, publications_engine, team_engine):
        scenarios = [
            (publications_engine, "Q1"), (publications_engine, "Q2"),
            (publications_engine, "Q3"), (team_engine, "Q4"),
            (team_engine, "Q5"),
        ]
        for engine, query_name in scenarios:
            query, record_trees = _record_trees(engine, PAPER_QUERIES[query_name])
            for records in record_trees:
                explanation = explain_valid_contributor(records, query)
                explained_kept = {d.dewey for d in explanation.kept()}
                pruned = prune_with_valid_contributor(records)
                assert explained_kept == pruned.kept_set(), query_name

    def test_q3_decisions(self, publications_engine):
        query, record_trees = _record_trees(publications_engine,
                                            PAPER_QUERIES["Q3"])
        explanation = explain_valid_contributor(record_trees[0], query)
        assert explanation.decision_for(D("0")).decision is Decision.ROOT
        assert explanation.decision_for(D("0.0")).decision is Decision.UNIQUE_LABEL
        covered = explanation.decision_for(D("0.2.1"))
        assert covered.decision is Decision.COVERED
        assert covered.because_of == D("0.2.0")
        descendant = explanation.decision_for(D("0.2.1.1"))
        assert descendant.decision is Decision.ANCESTOR_DISCARDED

    def test_q4_duplicate_content_decision(self, team_engine):
        query, record_trees = _record_trees(team_engine, PAPER_QUERIES["Q4"])
        explanation = explain_valid_contributor(record_trees[0], query)
        duplicate = explanation.decision_for(D("0.1.2"))
        assert duplicate.decision is Decision.DUPLICATE_CONTENT
        assert duplicate.because_of == D("0.1.0")
        kept_guard = explanation.decision_for(D("0.1.1"))
        assert kept_guard.kept
        assert kept_guard.decision is Decision.DISTINCT_CONTENT

    def test_summary_histogram(self, team_engine):
        query, record_trees = _record_trees(team_engine, PAPER_QUERIES["Q4"])
        explanation = explain_valid_contributor(record_trees[0], query)
        summary = explanation.summary()
        assert summary["ROOT"] == 1
        assert summary["DUPLICATE_CONTENT"] == 1
        assert sum(summary.values()) == len(explanation.decisions)

    def test_decision_for_missing_node(self, team_engine):
        query, record_trees = _record_trees(team_engine, PAPER_QUERIES["Q4"])
        explanation = explain_valid_contributor(record_trees[0], query)
        with pytest.raises(KeyError):
            explanation.decision_for(D("0.9.9"))


class TestExplainContributor:
    def test_kept_set_matches_pruner(self, publications_engine, team_engine):
        scenarios = [
            (publications_engine, "Q1"), (publications_engine, "Q3"),
            (team_engine, "Q4"), (team_engine, "Q5"),
        ]
        for engine, query_name in scenarios:
            query, record_trees = _record_trees(engine, PAPER_QUERIES[query_name])
            for records in record_trees:
                explanation = explain_contributor(records, query)
                explained_kept = {d.dewey for d in explanation.kept()}
                pruned = prune_with_contributor(records)
                assert explained_kept == pruned.kept_set(), query_name

    def test_q1_title_discarded_because_of_abstract(self, publications_engine):
        query, record_trees = _record_trees(publications_engine,
                                            PAPER_QUERIES["Q1"])
        explanation = explain_contributor(record_trees[0], query)
        title = explanation.decision_for(D("0.2.1.1"))
        assert not title.kept
        assert title.decision is Decision.COVERED
        assert title.because_of == D("0.2.1.2")


class TestComparisonExplanation:
    def test_q1_is_a_false_positive_fix(self, publications_engine):
        comparison = publications_engine.explain_comparison(PAPER_QUERIES["Q1"])
        kinds = {difference.dewey: difference.kind
                 for difference in comparison.differences}
        assert kinds[D("0.2.1.1")] is DifferenceKind.FALSE_POSITIVE_FIX
        assert comparison.summary()["redundancy_fixes"] == 0

    def test_q4_is_a_redundancy_fix(self, team_engine):
        comparison = team_engine.explain_comparison(PAPER_QUERIES["Q4"])
        kinds = {difference.dewey: difference.kind
                 for difference in comparison.differences}
        assert kinds[D("0.1.2")] is DifferenceKind.REDUNDANCY_FIX
        assert kinds[D("0.1.2.1")] is DifferenceKind.REDUNDANCY_FIX
        assert comparison.summary()["false_positive_fixes"] == 0

    def test_q5_no_differences(self, team_engine):
        comparison = team_engine.explain_comparison(PAPER_QUERIES["Q5"])
        assert comparison.differences == ()

    def test_difference_labels_filled(self, team_engine):
        comparison = team_engine.explain_comparison(PAPER_QUERIES["Q4"])
        assert all(difference.label for difference in comparison.differences)

    def test_classify_differences_direct_call(self, team_engine, team):
        query = Query.parse(PAPER_QUERIES["Q4"])
        validrtf = team_engine.search(query, "validrtf")
        maxmatch = team_engine.search(query, "maxmatch")
        labels = {node.dewey: node.label for node in team.iter_preorder()}
        comparison = classify_differences(query, validrtf, maxmatch, labels)
        assert comparison.query == str(query)
        assert len(comparison.differences) == 2


class TestEngineAndRendering:
    def test_engine_explain_validrtf(self, publications_engine):
        explanations = publications_engine.explain(PAPER_QUERIES["Q2"])
        assert len(explanations) == 2
        assert {str(e.root) for e in explanations} == {"0.2.0", "0.2.0.3.0"}

    def test_engine_explain_rejects_unknown(self, publications_engine):
        with pytest.raises(UnknownAlgorithmError):
            publications_engine.explain("xml", algorithm="validrtf-slca")

    def test_render_explanation(self, team_engine):
        explanation = team_engine.explain(PAPER_QUERIES["Q4"])[0]
        text = render_explanation(explanation)
        assert "fragment rooted at 0" in text
        assert "duplicates an earlier sibling" in text
        discarded_only = render_explanation(explanation, show_kept=False)
        assert "unique label" not in discarded_only

    def test_cli_explain(self, capsys):
        from repro.cli import main
        exit_code = main(["explain", "--dataset", "figure-1b", "Q4"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "redundancy fix" in output
        assert "1 redundancy fix" not in output  # two nodes differ
