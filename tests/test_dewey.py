"""Unit and property tests for Dewey codes."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.xmltree import DeweyCode, InvalidDeweyCode, lca_of_codes, sort_document_order

components = st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=6)


class TestConstruction:
    def test_parse_round_trip(self):
        code = DeweyCode.parse("0.2.0.1")
        assert code.components == (0, 2, 0, 1)
        assert str(code) == "0.2.0.1"

    def test_coerce_accepts_all_forms(self):
        assert DeweyCode.coerce("0.1") == DeweyCode((0, 1))
        assert DeweyCode.coerce([0, 1]) == DeweyCode((0, 1))
        code = DeweyCode((0, 1))
        assert DeweyCode.coerce(code) is code

    def test_root_is_zero(self):
        assert DeweyCode.root() == DeweyCode.parse("0")

    def test_empty_rejected(self):
        with pytest.raises(InvalidDeweyCode):
            DeweyCode(())

    def test_negative_component_rejected(self):
        with pytest.raises(InvalidDeweyCode):
            DeweyCode((0, -1))

    def test_non_integer_component_rejected(self):
        with pytest.raises(InvalidDeweyCode):
            DeweyCode((0, "1"))  # type: ignore[arg-type]

    def test_boolean_component_rejected(self):
        with pytest.raises(InvalidDeweyCode):
            DeweyCode((0, True))

    def test_parse_garbage_rejected(self):
        with pytest.raises(InvalidDeweyCode):
            DeweyCode.parse("0.x.1")
        with pytest.raises(InvalidDeweyCode):
            DeweyCode.parse("")


class TestNavigation:
    def test_parent_and_child(self):
        code = DeweyCode.parse("0.2.1")
        assert code.parent() == DeweyCode.parse("0.2")
        assert code.child(3) == DeweyCode.parse("0.2.1.3")
        assert DeweyCode.root().parent() is None

    def test_child_rejects_negative_ordinal(self):
        with pytest.raises(InvalidDeweyCode):
            DeweyCode.root().child(-1)

    def test_depth_level_ordinal(self):
        code = DeweyCode.parse("0.2.1")
        assert code.depth == 3
        assert code.level == 2
        assert code.ordinal == 1

    def test_ancestors_top_down(self):
        code = DeweyCode.parse("0.2.1")
        assert [str(a) for a in code.ancestors()] == ["0", "0.2"]
        assert [str(a) for a in code.ancestors(include_self=True)] == \
            ["0", "0.2", "0.2.1"]

    def test_ancestors_bottom_up(self):
        code = DeweyCode.parse("0.2.1")
        assert [str(a) for a in code.ancestors_bottom_up()] == ["0.2", "0"]
        assert [str(a) for a in code.ancestors_bottom_up(include_self=True)] == \
            ["0.2.1", "0.2", "0"]


class TestRelationships:
    def test_ancestor_descendant(self):
        top = DeweyCode.parse("0.2")
        bottom = DeweyCode.parse("0.2.1.0")
        assert top.is_ancestor_of(bottom)
        assert bottom.is_descendant_of(top)
        assert not top.is_ancestor_of(top)
        assert top.is_ancestor_or_self(top)

    def test_sibling(self):
        assert DeweyCode.parse("0.1").is_sibling_of(DeweyCode.parse("0.2"))
        assert not DeweyCode.parse("0.1").is_sibling_of(DeweyCode.parse("0.1"))
        assert not DeweyCode.parse("0.1").is_sibling_of(DeweyCode.parse("0.1.0"))

    def test_common_prefix(self):
        left = DeweyCode.parse("0.2.0.3")
        right = DeweyCode.parse("0.2.1")
        assert left.common_prefix(right) == DeweyCode.parse("0.2")

    def test_common_prefix_requires_same_root(self):
        with pytest.raises(InvalidDeweyCode):
            DeweyCode.parse("0.1").common_prefix(DeweyCode.parse("1.1"))

    def test_relative_to(self):
        code = DeweyCode.parse("0.2.1.4")
        assert code.relative_to(DeweyCode.parse("0.2")) == (1, 4)
        with pytest.raises(InvalidDeweyCode):
            code.relative_to(DeweyCode.parse("0.3"))

    def test_ordering_is_document_order(self):
        codes = ["0.2.1", "0", "0.2", "0.10", "0.2.0.5"]
        ordered = [str(code) for code in sort_document_order(codes)]
        assert ordered == ["0", "0.2", "0.2.0.5", "0.2.1", "0.10"]


class TestLcaOfCodes:
    def test_basic(self):
        lca = lca_of_codes(["0.2.0.3.0", "0.2.0.1", "0.2.0.2"])
        assert lca == DeweyCode.parse("0.2.0")

    def test_single(self):
        assert lca_of_codes(["0.5"]) == DeweyCode.parse("0.5")

    def test_empty_rejected(self):
        with pytest.raises(InvalidDeweyCode):
            lca_of_codes([])


class TestProperties:
    @given(components)
    def test_string_round_trip(self, parts):
        code = DeweyCode(parts)
        assert DeweyCode.parse(str(code)) == code

    @given(components, components)
    def test_lca_is_common_ancestor(self, left_parts, right_parts):
        left = DeweyCode([0] + left_parts)
        right = DeweyCode([0] + right_parts)
        lca = left.common_prefix(right)
        assert lca.is_ancestor_or_self(left)
        assert lca.is_ancestor_or_self(right)

    @given(components, components)
    def test_lca_is_deepest_common_ancestor(self, left_parts, right_parts):
        left = DeweyCode([0] + left_parts)
        right = DeweyCode([0] + right_parts)
        lca = left.common_prefix(right)
        # Any deeper node on the path to `left` is no longer an ancestor of
        # `right`.
        if lca != left:
            deeper = DeweyCode(left.components[: len(lca) + 1])
            assert not deeper.is_ancestor_or_self(right)

    @given(components, components)
    def test_ancestor_implies_order(self, left_parts, right_parts):
        left = DeweyCode([0] + left_parts)
        right = DeweyCode([0] + right_parts)
        if left.is_ancestor_of(right):
            assert left < right

    @given(components)
    def test_hashable_and_equal(self, parts):
        assert hash(DeweyCode(parts)) == hash(DeweyCode(tuple(parts)))
        assert DeweyCode(parts) == DeweyCode(tuple(parts))
