"""Differential corpus fuzz (fast, tier-1): corpus == union of per-doc.

Seeded random corpora (2–8 random trees) are searched through the corpus
engine across every corpus document backend × representation × all four
algorithms, and each answer is cross-checked against the union of the
per-document results computed by plain single-document memory engines.  This
is the corpus layer's core correctness contract (see ROADMAP, "Corpus
retrieval").

This module is the *bounded* version wired into tier-1 (a few seeds, tiny
trees); the deep sweep with more seeds, larger documents and the per-document
sharded backend lives behind the ``bench`` marker in
``benchmarks/test_corpus_fuzz.py``.  Both share ``tests/fuzz_util.py``.
"""

from __future__ import annotations

import shutil

import pytest

from fuzz_util import (
    assert_corpus_equals_union,
    assert_segmented_matches_fresh,
    build_corpus_engine,
    fresh_oracle,
    random_corpus,
    random_document,
    random_queries,
    reference_engines,
    run_mutation_sequence,
    segmented_engine,
    wire_lines,
)
from repro.core import ALGORITHM_NAMES
from repro.faults import InjectedCrash
from repro.service.protocol import encode_message, ranking_payload
from repro.storage import SegmentedStore, verify_database

SEEDS = (1, 2, 3)
BACKENDS = ("memory", "sqlite")
REPRESENTATIONS = ("packed", "object")

#: Bounded mutation-sequence fuzz (the deep sweep lives in benchmarks/).
MUTATION_SEEDS = (7, 8)
MUTATION_STEPS = 5


@pytest.mark.parametrize("representation", REPRESENTATIONS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_corpus_equals_per_document_union(backend, representation):
    for seed in SEEDS:
        trees = random_corpus(seed)
        corpus = build_corpus_engine(trees, backend, representation)
        references = reference_engines(trees)
        for query in random_queries(seed):
            for algorithm in ALGORITHM_NAMES:
                assert_corpus_equals_union(
                    corpus.search(query, algorithm), references, query,
                    algorithm, context=(seed, backend, representation))


@pytest.mark.parametrize("backend", BACKENDS)
def test_corpus_batch_equals_per_document_union(backend):
    """search_many (per-document batch fast path) honours the same union."""
    seed = 4
    trees = random_corpus(seed)
    corpus = build_corpus_engine(trees, backend, "packed")
    references = reference_engines(trees)
    queries = random_queries(seed, count=5)
    batched = corpus.search_many(queries, "validrtf")
    for query, result in zip(queries, batched):
        assert_corpus_equals_union(result, references, query, "validrtf",
                                   context=(seed, backend, "batch"))


def test_corpus_doc_filter_is_a_sub_union():
    """A doc_filter answer equals the union restricted to the filter."""
    seed = 5
    trees = random_corpus(seed, min_docs=3, max_docs=5)
    corpus = build_corpus_engine(trees, "memory", "packed")
    references = reference_engines(trees)
    subset = sorted(trees)[::2]
    for query in random_queries(seed, count=3):
        result = corpus.search(query, "validrtf", doc_filter=subset)
        restricted = {doc_id: references[doc_id] for doc_id in subset}
        assert_corpus_equals_union(result, restricted, query, "validrtf",
                                   context=(seed, "doc_filter"))
        assert set(result.doc_ids) <= set(subset)


@pytest.mark.parametrize("representation", REPRESENTATIONS)
def test_mutated_corpus_equals_fresh_rebuild(representation):
    """The update-oracle contract: any mutation sequence == fresh rebuild.

    Every intermediate state (after each add / update / delete / compact)
    must answer byte-identically — canonical search, compare and rank wire
    payloads across all four algorithms — to a corpus re-shredded from
    scratch out of the same live documents.
    """
    for seed in MUTATION_SEEDS:
        state = random_corpus(seed, min_docs=2, max_docs=3, max_nodes=25)
        store = SegmentedStore()
        for name in sorted(state):
            store.store_tree(state[name], name)
        queries = random_queries(seed, count=3)

        def check(label, state=state, store=store, queries=queries,
                  seed=seed):
            assert_segmented_matches_fresh(
                store, state, queries, representation,
                context=(seed, representation, label))

        check("initial")
        run_mutation_sequence(store, state, seed, MUTATION_STEPS, check)
        # An explicit final compaction must fold every segment away and
        # still answer identically.
        store.compact()
        check("final compact")
        assert store.segment_count() == 0
        store.close()


def test_mutated_corpus_equals_per_document_union():
    """The mutated store also honours the original union contract."""
    seed = 9
    state = random_corpus(seed, min_docs=2, max_docs=3, max_nodes=25)
    store = SegmentedStore()
    for name in sorted(state):
        store.store_tree(state[name], name)

    def check(label):
        corpus = segmented_engine(store, state, "packed")
        references = reference_engines(state)
        for query in random_queries(seed, count=2):
            assert_corpus_equals_union(
                corpus.search(query, "validrtf"), references, query,
                "validrtf", context=(seed, "mutated-union", label))

    run_mutation_sequence(store, state, seed, MUTATION_STEPS, check)
    store.close()


# ---------------------------------------------------------------------- #
# Crash-point differential fuzz: kill the process at every journaled
# fault point; the reopened database must answer exactly like the fresh
# pre-mutation or post-mutation oracle (atomicity), never anything else.
# ---------------------------------------------------------------------- #
#: (fault point, tear?) per mutation kind; a torn kill commits the
#: partial apply transaction first, simulating a torn page + power loss.
CRASH_POINTS = {
    "update": (("update.intent", False), ("update.apply", True),
               ("update.applied", False)),
    "delete": (("delete.intent", False), ("delete.applied", False)),
    "compact": (("compact.intent", False), ("compact.applied", False)),
}


def _kill_hook(point: str, tear: bool):
    def hook(name, connection):
        if name == point:
            if tear:
                connection.commit()
            raise InjectedCrash(f"killed at {name}")
    return hook


def _apply(store, state, kind, name, tree):
    if kind == "update":
        store.update_document(tree, name)
        state[name] = tree
    elif kind == "delete":
        store.delete_document(name)
        del state[name]
    else:
        store.compact()


@pytest.mark.parametrize("representation", REPRESENTATIONS)
def test_crash_at_every_kill_point_recovers(representation, tmp_path):
    """The crash-point differential contract.

    For every mutation of a seeded sequence and every journaled fault
    point of that mutation kind, crash a copy of the database mid-flight,
    reopen it (journal recovery runs), and assert the survivor answers
    byte-identically to either the pre-mutation or the post-mutation
    fresh-rebuild oracle — a mutation is all-or-nothing under any crash —
    and that ``verify_database`` finds a clean store.
    """
    seed = 11
    state = random_corpus(seed, min_docs=2, max_docs=3, max_nodes=20)
    db = str(tmp_path / "crash.db")
    store = SegmentedStore(db)
    for name in sorted(state):
        store.store_tree(state[name], name)
    queries = random_queries(seed, count=2)
    docs = sorted(state)
    steps = (
        ("update", "doc-new", random_document(seed * 131 + 1, max_nodes=20)),
        ("update", docs[0], random_document(seed * 131 + 2, max_nodes=20)),
        ("compact", "", None),
        ("delete", docs[-1], None),
    )
    trial_no = 0
    for kind, name, tree in steps:
        pre_state = dict(state)
        post_state = dict(state)
        if kind == "update":
            post_state[name] = tree
        elif kind == "delete":
            del post_state[name]
        pre_lines = wire_lines(fresh_oracle(pre_state, representation),
                               queries)
        post_lines = wire_lines(fresh_oracle(post_state, representation),
                                queries)
        store.close()
        for point, tear in CRASH_POINTS[kind]:
            trial_no += 1
            trial = str(tmp_path / f"trial-{trial_no}.db")
            shutil.copy(db, trial)
            victim = SegmentedStore(trial)
            victim.fault_hook = _kill_hook(point, tear)
            with pytest.raises(InjectedCrash):
                _apply(victim, dict(state), kind, name, tree)
            victim.close()
            # "Reboot": recovery runs at open and resolves the intent —
            # rolled back must answer the pre-mutation oracle, rolled
            # forward the post-mutation one; nothing in between exists.
            survivor = SegmentedStore(trial)
            recovery = dict(survivor.last_recovery)
            assert sum(recovery.values()) == 1, (kind, point, recovery)
            forward = recovery["rolled_forward"] == 1
            outcome = post_state if forward else pre_state
            assert set(survivor.documents()) == set(outcome), (kind, point)
            got = wire_lines(
                segmented_engine(survivor, outcome, representation), queries)
            assert got == (post_lines if forward else pre_lines), \
                (kind, point, representation, forward)
            survivor.close()
            report = verify_database(trial)
            assert report.clean, (kind, point, report.render())
        # The kill points survived; now apply the mutation for real.
        store = SegmentedStore(db)
        _apply(store, state, kind, name, tree)
    store.close()
    assert verify_database(db).clean


# ---------------------------------------------------------------------- #
# Ranked retrieval fuzz: determinism across the backend matrix and the
# threshold driver's byte-identity with the exhaustive path (the
# early-termination contract of ``CorpusSearchEngine.rank_search``).
# ---------------------------------------------------------------------- #
def test_ranked_answers_deterministic_across_backends():
    """Every backend × representation serves the same ranked wire bytes.

    Ranking reads impact metadata (count, max node depth) from the posting
    store, so a backend that shreds or migrates that metadata differently
    would silently reorder results — the canonical wire encoding catches
    any drift, including float-formatting differences in the scores.  The
    disk backends run tree-free under ``from_trees``, so the engines here
    are built with the trees kept resident explicitly.
    """
    from repro.corpus import CorpusSearchEngine, corpus_from_trees

    for seed in SEEDS:
        trees = random_corpus(seed)
        queries = random_queries(seed)
        rankings = {}
        for backend in BACKENDS:
            for representation in REPRESENTATIONS:
                source = corpus_from_trees(trees, backend=backend,
                                           representation=representation,
                                           shard_count=2)
                engine = CorpusSearchEngine(source, trees=trees)
                rankings[(backend, representation)] = [
                    encode_message({"query": query,
                                    "ranking": ranking_payload(
                                        engine.search_ranked(query))})
                    for query in queries]
        reference = rankings[("memory", "packed")]
        for key, lines in rankings.items():
            assert lines == reference, (seed, *key)


def test_early_termination_is_byte_identical_to_exhaustive():
    """The threshold driver never changes the answer, only the visit count.

    For seeded random corpora and every interesting ``top_k`` (empty, tiny,
    corpus-sized, oversized), ``early_terminate=True`` must produce wire
    bytes identical to the exhaustive path, and its visit accounting must
    stay consistent (visited + skipped == selected, never more visits than
    the exhaustive pass).
    """
    for seed in SEEDS:
        trees = random_corpus(seed)
        engine = build_corpus_engine(trees, "memory", "packed")
        for query in random_queries(seed):
            for top_k in (0, 1, 2, len(trees), len(trees) + 3):
                exhaustive = engine.rank_search(query, top_k=top_k)
                early = engine.rank_search(query, top_k=top_k,
                                           early_terminate=True)
                context = (seed, query, top_k)
                assert encode_message(
                    {"ranking": ranking_payload(early.ranked)}) == \
                    encode_message(
                        {"ranking": ranking_payload(exhaustive.ranked)}), \
                    context
                assert early.docs_visited <= exhaustive.docs_visited, context
                assert early.docs_visited + early.docs_skipped == \
                    early.docs_selected, context
                assert exhaustive.docs_visited == \
                    exhaustive.docs_selected, context


def test_corpus_sharding_never_changes_answers():
    """Doc-partitioned shard counts are invisible in the results."""
    seed = 6
    trees = random_corpus(seed, min_docs=4, max_docs=6)
    references = reference_engines(trees)
    engines = [build_corpus_engine(trees, "sqlite", "packed",
                                   shard_count=shard_count)
               for shard_count in (1, 2, 4)]
    for query in random_queries(seed, count=3):
        for engine in engines:
            assert_corpus_equals_union(
                engine.search(query, "validrtf"), references, query,
                "validrtf", context=(seed, len(engine.source.shards)))
