"""Tests for the inverted index and corpus statistics."""

from __future__ import annotations

import pytest

from repro.index import (
    InvertedIndex,
    build_index,
    document_profile,
    frequency_table,
    keyword_frequencies,
    merge_keyword_nodes,
    top_keywords,
)
from repro.xmltree import DeweyCode, parse_string

DOCUMENT = """
<publications>
  <article><title>xml keyword search</title><year>2008</year></article>
  <article><title>skyline query</title><abstract>dynamic skyline</abstract></article>
</publications>
"""


@pytest.fixture(scope="module")
def index() -> InvertedIndex:
    return build_index(parse_string(DOCUMENT, name="mini"))


class TestInvertedIndex:
    def test_postings_sorted_document_order(self, index):
        postings = index.postings("skyline")
        assert [str(code) for code in postings] == ["0.1.0", "0.1.1"]
        assert postings.keyword == "skyline"
        assert len(postings) == 2 and bool(postings)

    def test_postings_case_insensitive(self, index):
        assert [str(code) for code in index.postings("SKYLINE")] == \
            [str(code) for code in index.postings("skyline")]

    def test_missing_keyword_empty(self, index):
        postings = index.postings("absent")
        assert len(postings) == 0 and not postings

    def test_keyword_nodes_for_query(self, index):
        lists = index.keyword_nodes(["xml", "skyline", "xml"])
        assert set(lists) == {"xml", "skyline"}
        assert [str(code) for code in lists["xml"]] == ["0.0.0"]

    def test_labels_are_indexed(self, index):
        assert index.frequency("article") == 2
        assert index.frequency("title") == 2

    def test_contains_and_vocabulary(self, index):
        assert "skyline" in index
        assert "absent" not in index
        assert "xml" in index.vocabulary()
        assert index.vocabulary_size() == len(index.vocabulary())
        assert index.total_postings() >= index.vocabulary_size()

    def test_node_words(self, index):
        words = index.node_words(DeweyCode.parse("0.1.1"))
        assert {"abstract", "dynamic", "skyline"} == set(words)
        assert index.node_words(DeweyCode.parse("0.9")) == frozenset()

    def test_merge_keyword_nodes(self, index):
        lists = index.keyword_nodes(["skyline", "dynamic"])
        merged = merge_keyword_nodes(lists)
        assert [str(code) for code in merged] == ["0.1.0", "0.1.1"]

    def test_matches_analyzer_content(self, index):
        # Every posting really contains its keyword according to the analyzer.
        for word in ("xml", "skyline", "article"):
            for dewey in index.postings(word):
                node = index.tree.node(dewey)
                assert word in index.analyzer.node_content(node)


class TestStatistics:
    def test_keyword_frequencies(self, index):
        rows = keyword_frequencies(index, ["skyline", "absent"])
        assert rows[0].keyword == "skyline" and rows[0].frequency == 2
        assert rows[1].frequency == 0

    def test_frequency_table(self, index):
        table = frequency_table({"mini": index}, ["xml", "skyline"])
        assert table[0] == {"keyword": "xml", "mini": 1}
        assert table[1]["mini"] == 2

    def test_document_profile(self, index):
        profile = document_profile(index.tree, index)
        assert profile.name == "mini"
        assert profile.node_count == index.tree.size()
        assert profile.max_depth == 2
        assert profile.distinct_labels == len(index.tree.labels())
        assert profile.label_histogram["article"] == 2
        assert len(profile.as_row()) == 6

    def test_top_keywords(self, index):
        top = top_keywords(index, limit=3)
        assert len(top) == 3
        assert top[0].frequency >= top[-1].frequency
