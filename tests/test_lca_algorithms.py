"""Unit tests for the SLCA / ELCA algorithms on hand-built cases."""

from __future__ import annotations

import pytest

from repro.index import InvertedIndex
from repro.lca import (
    closest_match_lca,
    elca_is_slca,
    indexed_lookup_eager_slca,
    indexed_stack_elca,
    merge_matches,
    naive_common_ancestors,
    naive_elca,
    naive_elca_exhaustive,
    naive_lca_candidates,
    naive_slca,
    remove_ancestors,
    remove_descendants,
    scan_eager_slca,
    stack_slca,
)
from repro.xmltree import DeweyCode

D = DeweyCode.parse


def codes(*texts):
    return [D(text) for text in texts]


@pytest.fixture
def figure_lists(publications):
    """The posting lists of the paper's Q2 ("Liu keyword") on Figure 1(a)."""
    index = InvertedIndex(publications)
    return index.keyword_nodes(["liu", "keyword"])


class TestHelpers:
    def test_remove_ancestors(self):
        kept = remove_ancestors(codes("0", "0.1", "0.1.2", "0.2"))
        assert [str(code) for code in kept] == ["0.1.2", "0.2"]

    def test_remove_ancestors_with_duplicates(self):
        kept = remove_ancestors(codes("0.1", "0.1"))
        assert [str(code) for code in kept] == ["0.1"]

    def test_remove_descendants(self):
        kept = remove_descendants(codes("0", "0.1", "0.1.2", "0.2"))
        assert [str(code) for code in kept] == ["0"]

    def test_merge_matches_masks(self):
        matches = merge_matches([codes("0.1", "0.2"), codes("0.2")])
        by_code = {str(match.dewey): match.mask for match in matches}
        assert by_code == {"0.1": 1, "0.2": 3}

    def test_closest_match_lca(self):
        sorted_list = codes("0.0.1", "0.2.5", "0.4")
        assert str(closest_match_lca(D("0.2.3"), sorted_list)) == "0.2"
        assert str(closest_match_lca(D("0.9"), sorted_list)) == "0"


class TestNaive:
    def test_lca_candidates(self):
        lists = {"w1": codes("0.0.0", "0.2"), "w2": codes("0.0.1")}
        candidates = naive_lca_candidates(lists)
        assert [str(code) for code in candidates] == ["0", "0.0"]

    def test_common_ancestors_are_ancestor_closed(self):
        lists = {"w1": codes("0.0.0"), "w2": codes("0.0.1")}
        cas = naive_common_ancestors(lists)
        assert [str(code) for code in cas] == ["0", "0.0"]

    def test_slca_deepest_only(self):
        lists = {"w1": codes("0.0.0"), "w2": codes("0.0.1")}
        assert [str(code) for code in naive_slca(lists)] == ["0.0"]

    def test_empty_keyword_list_gives_empty_result(self):
        lists = {"w1": codes("0.0"), "w2": []}
        assert naive_slca(lists) == []
        assert naive_elca(lists) == []
        assert naive_lca_candidates(lists) == []

    def test_elca_includes_ancestor_with_exclusive_witnesses(self):
        # article has its own title/abstract witnesses even after excluding
        # the self-contained ref node.
        lists = {
            "liu": codes("0.2.0.0.0.0", "0.2.0.3.0"),
            "keyword": codes("0.2.0.1", "0.2.0.2", "0.2.0.3.0"),
        }
        assert [str(code) for code in naive_elca(lists)] == ["0.2.0", "0.2.0.3.0"]
        assert [str(code) for code in naive_slca(lists)] == ["0.2.0.3.0"]

    def test_elca_excludes_covered_ancestor(self):
        # The root sees w1 only inside the CA child, so it is not an ELCA.
        lists = {"w1": codes("0.0.0"), "w2": codes("0.0.1", "0.1")}
        assert [str(code) for code in naive_elca(lists)] == ["0.0"]

    def test_elca_implementations_agree(self):
        lists = {
            "w1": codes("0.0.0", "0.1.0", "0.2"),
            "w2": codes("0.0.1", "0.1.0", "0.3.4"),
        }
        assert naive_elca(lists) == naive_elca_exhaustive(lists)


class TestOptimizedSLCA:
    CASES = [
        {"w1": codes("0.0.0"), "w2": codes("0.0.1")},
        {"w1": codes("0.0", "0.1", "0.2"), "w2": codes("0.1.3")},
        {"w1": codes("0.1.0", "0.2.0"), "w2": codes("0.1.1", "0.2.1"),
         "w3": codes("0.1.2")},
        {"w1": codes("0.5"), "w2": codes("0.5")},
        {"w1": codes("0", "0.1"), "w2": codes("0.1.0.0")},
    ]

    @pytest.mark.parametrize("lists", CASES)
    def test_all_algorithms_agree_with_naive(self, lists):
        expected = naive_slca(lists)
        assert indexed_lookup_eager_slca(lists) == expected
        assert scan_eager_slca(lists) == expected
        assert stack_slca(lists) == expected

    def test_single_keyword_slca_removes_nested_matches(self):
        lists = {"w1": codes("0.1", "0.1.2", "0.3")}
        expected = ["0.1.2", "0.3"]
        assert [str(c) for c in indexed_lookup_eager_slca(lists)] == expected
        assert [str(c) for c in scan_eager_slca(lists)] == expected
        assert [str(c) for c in stack_slca(lists)] == expected

    def test_empty_list_short_circuits(self):
        lists = {"w1": codes("0.1"), "w2": []}
        assert indexed_lookup_eager_slca(lists) == []
        assert scan_eager_slca(lists) == []
        assert stack_slca(lists) == []

    def test_on_paper_figure(self, figure_lists):
        assert [str(code) for code in indexed_lookup_eager_slca(figure_lists)] == \
            ["0.2.0.3.0"]
        assert scan_eager_slca(figure_lists) == indexed_lookup_eager_slca(figure_lists)
        assert stack_slca(figure_lists) == indexed_lookup_eager_slca(figure_lists)


class TestIndexedStackELCA:
    def test_matches_naive_on_paper_figure(self, figure_lists):
        assert indexed_stack_elca(figure_lists) == naive_elca(figure_lists)
        assert [str(code) for code in indexed_stack_elca(figure_lists)] == \
            ["0.2.0", "0.2.0.3.0"]

    def test_results_sorted_document_order(self):
        lists = {"w1": codes("0.2.0", "0.0.0"), "w2": codes("0.0.1", "0.2.1")}
        result = indexed_stack_elca(lists)
        assert result == sorted(result)

    def test_empty_list_short_circuits(self):
        assert indexed_stack_elca({"w1": []}) == []

    def test_slca_subset_of_elca(self, figure_lists):
        elcas = set(indexed_stack_elca(figure_lists))
        slcas = set(indexed_lookup_eager_slca(figure_lists))
        assert slcas <= elcas

    def test_elca_is_slca_flags(self):
        flags = elca_is_slca(codes("0.2.0", "0.2.0.3.0"))
        assert flags == [False, True]
        assert elca_is_slca(codes("0.1", "0.2")) == [True, True]
