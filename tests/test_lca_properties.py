"""Property-based tests: the optimized LCA algorithms against the naive specs.

Random Dewey-code posting lists are generated directly (no tree needed — every
algorithm works purely on codes), and the optimized algorithms must agree with
the naive reference implementations, plus the structural invariants relating
CA, SLCA and ELCA.
"""

from __future__ import annotations

from typing import Dict, List

import pytest
from hypothesis import given, settings, strategies as st

from repro.lca import (
    indexed_lookup_eager_slca,
    indexed_stack_elca,
    naive_common_ancestors,
    naive_elca,
    naive_elca_exhaustive,
    naive_slca,
    scan_eager_slca,
    stack_slca,
)
from repro.xmltree import DeweyCode

# Dewey codes over a small component alphabet so collisions / nestings happen.
dewey_codes = st.lists(
    st.integers(min_value=0, max_value=2), min_size=0, max_size=4
).map(lambda suffix: DeweyCode([0] + suffix))

posting_list = st.lists(dewey_codes, min_size=1, max_size=6)

keyword_lists = st.dictionaries(
    keys=st.sampled_from(["w1", "w2", "w3"]),
    values=posting_list,
    min_size=1,
    max_size=3,
)


@settings(max_examples=200, deadline=None)
@given(keyword_lists)
def test_optimized_slca_algorithms_match_naive(lists: Dict[str, List[DeweyCode]]):
    expected = naive_slca(lists)
    assert indexed_lookup_eager_slca(lists) == expected
    assert scan_eager_slca(lists) == expected
    assert stack_slca(lists) == expected


@settings(max_examples=200, deadline=None)
@given(keyword_lists)
def test_indexed_stack_elca_matches_naive(lists: Dict[str, List[DeweyCode]]):
    assert indexed_stack_elca(lists) == naive_elca(lists)


@settings(max_examples=150, deadline=None)
@given(keyword_lists)
def test_naive_elca_variants_agree(lists: Dict[str, List[DeweyCode]]):
    assert naive_elca(lists) == naive_elca_exhaustive(lists)


@settings(max_examples=150, deadline=None)
@given(keyword_lists)
def test_slca_subset_of_elca_subset_of_ca(lists: Dict[str, List[DeweyCode]]):
    slcas = set(naive_slca(lists))
    elcas = set(naive_elca(lists))
    cas = set(naive_common_ancestors(lists))
    assert slcas <= elcas <= cas


@settings(max_examples=150, deadline=None)
@given(keyword_lists)
def test_slca_nodes_are_incomparable(lists: Dict[str, List[DeweyCode]]):
    slcas = naive_slca(lists)
    for first in slcas:
        for second in slcas:
            if first != second:
                assert not first.is_ancestor_of(second)


@settings(max_examples=150, deadline=None)
@given(keyword_lists)
def test_elca_subtrees_contain_all_keywords(lists: Dict[str, List[DeweyCode]]):
    elcas = naive_elca(lists)
    for elca in elcas:
        for keyword, deweys in lists.items():
            if not deweys:
                continue
            assert any(elca.is_ancestor_or_self(dewey) for dewey in deweys), \
                f"ELCA {elca} misses keyword {keyword}"


@settings(max_examples=150, deadline=None)
@given(keyword_lists)
def test_results_sorted_and_unique(lists: Dict[str, List[DeweyCode]]):
    for algorithm in (indexed_lookup_eager_slca, scan_eager_slca, stack_slca,
                      indexed_stack_elca):
        result = algorithm(lists)
        assert result == sorted(result)
        assert len(result) == len(set(result))


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("keyword_count", (1, 2, 3, 4))
def test_stack_slca_cross_check_on_random_trees(seed, keyword_count,
                                                make_random_tree,
                                                make_random_keyword_lists):
    """``stack_slca`` agrees with Indexed Lookup Eager and Scan Eager on
    posting lists drawn from real (randomly generated) trees, which are
    deeper and denser than the hypothesis strategy above produces."""
    tree = make_random_tree(seed, max_children=4, max_depth=5, max_nodes=60)
    lists = make_random_keyword_lists(tree, seed, keyword_count=keyword_count)
    expected = indexed_lookup_eager_slca(lists)
    assert stack_slca(lists) == expected, (seed, keyword_count)
    assert scan_eager_slca(lists) == expected, (seed, keyword_count)
