"""Tests for the benchmark harness and the Figure 5 / Figure 6 drivers."""

from __future__ import annotations

import pytest

from repro.bench import (
    DatasetSpec,
    default_datasets,
    figure5_rows,
    figure5_series,
    figure5_summary,
    figure6_rows,
    figure6_series,
    figure6_summary,
    format_series,
    format_summary,
    format_table,
    measure_query,
    render_figure5,
    render_figure6,
    run_workload,
    time_algorithm,
)
from repro.core import SearchEngine
from repro.datasets import WorkloadQuery, publications_tree


@pytest.fixture(scope="module")
def tiny_spec():
    """A miniature dataset spec so harness tests stay fast."""
    workload = (
        WorkloadQuery(label="lk", keywords=("liu", "keyword")),
        WorkloadQuery(label="xks", keywords=("xml", "keyword", "search")),
    )
    return DatasetSpec(name="figure-1a", tree_factory=publications_tree,
                       workload=workload, description="paper figure instance")


@pytest.fixture(scope="module")
def tiny_run(tiny_spec):
    return run_workload(tiny_spec, repetitions=1)


class TestHarness:
    def test_default_datasets_registered(self):
        specs = default_datasets()
        assert set(specs) == {"dblp", "xmark-standard", "xmark-data1",
                              "xmark-data2"}
        for spec in specs.values():
            assert spec.workload

    def test_time_algorithm_positive(self):
        engine = SearchEngine(publications_tree())
        elapsed = time_algorithm(engine, "liu keyword", "validrtf", repetitions=1)
        assert elapsed > 0.0
        with pytest.raises(ValueError):
            time_algorithm(engine, "liu keyword", "validrtf", repetitions=0)

    def test_measure_query_fields(self, tiny_spec):
        engine = SearchEngine(tiny_spec.tree_factory())
        measurement = measure_query(engine, tiny_spec.name,
                                    tiny_spec.workload[0], repetitions=1)
        assert measurement.dataset == "figure-1a"
        assert measurement.rtf_count == 2
        assert measurement.maxmatch_seconds > 0.0
        row = measurement.as_row()
        assert row["query"] == "lk"
        assert row["cfr"] <= 1.0

    def test_run_workload_collects_all_queries(self, tiny_run, tiny_spec):
        assert len(tiny_run.measurements) == len(tiny_spec.workload)
        assert len(tiny_run.rows()) == len(tiny_spec.workload)

    def test_run_workload_query_subset(self, tiny_spec):
        run = run_workload(tiny_spec, repetitions=1,
                           queries=tiny_spec.workload[:1])
        assert len(run.measurements) == 1


class TestFigure5:
    def test_rows_and_series(self, tiny_run):
        rows = figure5_rows(tiny_run)
        assert len(rows) == 2
        assert {"query", "maxmatch_ms", "validrtf_ms", "rtfs",
                "time_ratio"} <= set(rows[0])
        series = figure5_series(tiny_run)
        assert len(series["labels"]) == len(series["rtfs"]) == 2

    def test_summary(self, tiny_run):
        summary = figure5_summary(tiny_run)
        assert summary["queries"] == 2
        assert summary["mean_time_ratio"] > 0.0
        assert summary["max_time_ratio"] >= summary["min_time_ratio"]

    def test_render(self, tiny_run):
        text = render_figure5(tiny_run)
        assert "Figure 5" in text and "lk" in text and "summary:" in text


class TestFigure6:
    def test_rows_and_series(self, tiny_run):
        rows = figure6_rows(tiny_run)
        assert len(rows) == 2
        assert {"cfr", "apr_prime", "max_apr"} <= set(rows[0])
        series = figure6_series(tiny_run)
        assert all(0.0 <= value <= 1.0 for value in series["cfr"])

    def test_summary(self, tiny_run):
        summary = figure6_summary(tiny_run)
        assert summary["queries"] == 2
        assert 0.0 <= summary["mean_cfr"] <= 1.0

    def test_render(self, tiny_run):
        text = render_figure6(tiny_run)
        assert "Figure 6" in text and "CFR" in text


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "long-value"}, {"a": 22, "b": 0.5}]
        text = format_table(rows, ("a", "b"), title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="demo")

    def test_format_series(self):
        text = format_series("rtfs", ["q1", "q2"], [1.0, 2.0], precision=1)
        assert text == "rtfs: q1=1.0, q2=2.0"

    def test_format_summary(self):
        text = format_summary({"mean": 0.123456, "count": 3}, title="stats")
        assert "stats" in text and "0.1235" in text and "count: 3" in text
