"""Tests for the contributor (MaxMatch) and valid-contributor (ValidRTF) filters."""

from __future__ import annotations

import pytest

from repro.core import (
    Query,
    build_fragment,
    build_record_tree,
    is_contributor,
    is_valid_contributor,
    prune_with_contributor,
    prune_with_valid_contributor,
)
from repro.core.node_record import NodeRecord
from repro.text import ContentAnalyzer
from repro.xmltree import DeweyCode, spec, tree_from_spec

D = DeweyCode.parse


def record(dewey: str, label: str, mask: int, words=()) -> NodeRecord:
    return NodeRecord(dewey=D(dewey), label=label, keyword_mask=mask,
                      content_words=frozenset(words))


class TestContributorPredicate:
    def test_strict_superset_sibling_discards(self):
        node = record("0.1", "title", 0b011)
        sibling = record("0.2", "abstract", 0b111)
        assert not is_contributor(node, [node, sibling])

    def test_equal_masks_keep_both(self):
        first = record("0.1", "player", 0b01)
        second = record("0.2", "player", 0b01)
        assert is_contributor(first, [first, second])
        assert is_contributor(second, [first, second])

    def test_incomparable_masks_keep_both(self):
        first = record("0.1", "a", 0b01)
        second = record("0.2", "b", 0b10)
        assert is_contributor(first, [first, second])

    def test_label_is_ignored_by_contributor(self):
        # MaxMatch compares against every sibling regardless of label — the
        # source of the false-positive problem.
        node = record("0.1", "title", 0b011)
        sibling = record("0.2", "abstract", 0b111)
        assert not is_contributor(node, [node, sibling])

    def test_single_child_is_contributor(self):
        node = record("0.1", "title", 0b001)
        assert is_contributor(node, [node])


class TestValidContributorPredicate:
    def test_unique_label_always_kept(self):
        node = record("0.1", "title", 0b011)
        assert is_valid_contributor(node, [node])

    def test_rule_2a_strict_cover_discards(self):
        weak = record("0.1", "player", 0b01)
        strong = record("0.2", "player", 0b11)
        assert not is_valid_contributor(weak, [weak, strong])
        assert is_valid_contributor(strong, [weak, strong])

    def test_rule_2b_duplicate_content_keeps_first(self):
        first = record("0.1", "player", 0b01, {"position", "forward"})
        second = record("0.2", "player", 0b01, {"position", "guard"})
        third = record("0.3", "player", 0b01, {"position", "forward"})
        group = [first, second, third]
        assert is_valid_contributor(first, group)
        assert is_valid_contributor(second, group)
        assert not is_valid_contributor(third, group)

    def test_rule_2b_distinct_content_keeps_all(self):
        first = record("0.1", "player", 0b01, {"position", "forward"})
        second = record("0.2", "player", 0b01, {"position", "guard"})
        assert is_valid_contributor(first, [first, second])
        assert is_valid_contributor(second, [first, second])


@pytest.fixture
def redundancy_tree():
    """A parent with same-label children, two of which match identically."""
    document = spec(
        "team", None,
        spec("name", "grizzlies"),
        spec("players", None,
             spec("player", None, spec("position", "forward")),
             spec("player", None, spec("position", "guard")),
             spec("player", None, spec("position", "forward"))),
    )
    return tree_from_spec(document)


class TestPruning:
    def _records(self, tree, query_text, root, keyword_nodes):
        query = Query.parse(query_text)
        fragment = build_fragment(tree, D(root), keyword_nodes)
        analyzer = ContentAnalyzer(tree)
        return build_record_tree(tree, analyzer, query, fragment)

    def test_contributor_keeps_duplicates(self, redundancy_tree):
        records = self._records(redundancy_tree, "grizzlies position", "0",
                                ["0.0", "0.1.0.0", "0.1.1.0", "0.1.2.0"])
        pruned = prune_with_contributor(records)
        assert D("0.1.2") in pruned.kept_set()
        assert pruned.algorithm == "maxmatch"

    def test_valid_contributor_removes_duplicates(self, redundancy_tree):
        records = self._records(redundancy_tree, "grizzlies position", "0",
                                ["0.0", "0.1.0.0", "0.1.1.0", "0.1.2.0"])
        pruned = prune_with_valid_contributor(records)
        kept = {str(code) for code in pruned.kept_nodes}
        # The duplicate "forward" player (document-order later) is dropped,
        # together with its subtree.
        assert "0.1.2" not in kept and "0.1.2.0" not in kept
        assert "0.1.0" in kept and "0.1.1" in kept
        assert pruned.algorithm == "validrtf"

    def test_discarded_subtrees_removed_entirely(self, redundancy_tree):
        records = self._records(redundancy_tree, "grizzlies gassol position", "0",
                                ["0.0", "0.1.0.0", "0.1.1.0", "0.1.2.0"])
        # Without a "gassol" match nothing changes here, but pruning must never
        # keep a node whose ancestor was discarded.
        for pruner in (prune_with_contributor, prune_with_valid_contributor):
            pruned = pruner(records)
            kept = pruned.kept_set()
            for code in kept:
                ancestor = code.parent()
                while ancestor is not None and ancestor in records.by_dewey:
                    assert ancestor in kept
                    ancestor = ancestor.parent()

    def test_root_always_kept(self, redundancy_tree):
        records = self._records(redundancy_tree, "grizzlies position", "0",
                                ["0.0", "0.1.0.0"])
        for pruner in (prune_with_contributor, prune_with_valid_contributor):
            assert D("0") in pruner(records).kept_set()

    def test_valid_contributor_never_prunes_unique_labels(self, publications):
        records = self._records(
            publications, "wong fu dynamic skyline query", "0.2.1",
            ["0.2.1.0.0.0", "0.2.1.0.1.0", "0.2.1.1", "0.2.1.2"])
        pruned = prune_with_valid_contributor(records)
        assert pruned.kept_set() == set(records.fragment.nodes)
