"""Tests for the SearchEngine facade."""

from __future__ import annotations

import pytest

from repro.core import ALGORITHM_NAMES, SearchEngine, UnknownAlgorithmError
from repro.datasets import PAPER_QUERIES
from repro.xmltree import DeweyCode, to_xml_string

D = DeweyCode.parse

DOCUMENT = """
<catalog>
  <book><title>xml databases</title></book>
  <book><title>keyword search</title></book>
</catalog>
"""


class TestConstruction:
    def test_from_string(self):
        engine = SearchEngine.from_string(DOCUMENT)
        assert engine.tree.root.label == "catalog"
        result = engine.search("xml")
        assert result.count == 1

    def test_from_file(self, tmp_path, publications):
        path = tmp_path / "pub.xml"
        path.write_text(to_xml_string(publications), encoding="utf-8")
        engine = SearchEngine.from_file(path)
        assert engine.tree.size() == publications.size()

    def test_all_algorithms_registered(self, publications_engine):
        for name in ALGORITHM_NAMES:
            assert publications_engine.algorithm(name) is not None

    def test_unknown_algorithm_rejected(self, publications_engine):
        with pytest.raises(UnknownAlgorithmError):
            publications_engine.search("xml", algorithm="bogus")


class TestSearchAndCompare:
    def test_search_default_is_validrtf(self, publications_engine):
        result = publications_engine.search(PAPER_QUERIES["Q2"])
        assert result.algorithm == "validrtf"
        assert result.count == 2

    def test_compare_outcome(self, team_engine):
        outcome = team_engine.compare(PAPER_QUERIES["Q4"])
        assert outcome.validrtf.algorithm == "validrtf"
        assert outcome.maxmatch.algorithm == "maxmatch"
        assert outcome.report.lca_count == 1
        assert outcome.report.cfr < 1.0

    def test_keyword_nodes_and_lca_nodes(self, publications_engine):
        lists = publications_engine.keyword_nodes("liu keyword")
        assert set(lists) == {"liu", "keyword"}
        elca = publications_engine.lca_nodes("liu keyword")
        slca = publications_engine.lca_nodes("liu keyword", "maxmatch-slca")
        assert set(slca) <= set(elca)

    def test_cid_mode_forwarded(self, publications):
        exact_engine = SearchEngine(publications, cid_mode="exact")
        result = exact_engine.search(PAPER_QUERIES["Q3"])
        assert result.count == 1


class TestRendering:
    def test_render_fragment_marks_keyword_nodes(self, publications_engine):
        result = publications_engine.search(PAPER_QUERIES["Q1"])
        text = publications_engine.render_fragment(result.fragments[0])
        assert "0.2.1 article" in text
        assert "*" in text

    def test_render_result_lists_fragments(self, publications_engine):
        result = publications_engine.search(PAPER_QUERIES["Q2"])
        text = publications_engine.render_result(result)
        assert "[1]" in text and "[2]" in text
        assert "SLCA" in text and "LCA" in text

    def test_render_empty_result(self, publications_engine):
        result = publications_engine.search("nonexistentterm anotherabsentterm")
        assert publications_engine.render_result(result) == "(no results)"

    def test_render_without_text(self, publications_engine):
        result = publications_engine.search(PAPER_QUERIES["Q1"])
        text = publications_engine.render_fragment(result.fragments[0],
                                                   show_text=False)
        assert '"' not in text
