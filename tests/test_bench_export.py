"""Tests for benchmark-result export (CSV / JSON / ASCII charts)."""

from __future__ import annotations

import csv
import json

import pytest

from repro.bench import (
    DatasetSpec,
    ascii_bar_chart,
    chart_figure5,
    chart_figure6,
    export_run,
    run_payload,
    run_workload,
    write_csv,
    write_json,
)
from repro.datasets import WorkloadQuery, publications_tree


@pytest.fixture(scope="module")
def tiny_run():
    spec = DatasetSpec(
        name="figure-1a",
        tree_factory=publications_tree,
        workload=(
            WorkloadQuery(label="lk", keywords=("liu", "keyword")),
            WorkloadQuery(label="xks", keywords=("xml", "keyword", "search")),
        ),
    )
    return run_workload(spec, repetitions=1)


class TestWriters:
    def test_write_csv_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_csv(rows, tmp_path / "rows.csv")
        with path.open() as handle:
            read_back = list(csv.DictReader(handle))
        assert read_back == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_write_csv_column_selection(self, tmp_path):
        rows = [{"a": 1, "b": 2, "c": 3}]
        path = write_csv(rows, tmp_path / "rows.csv", columns=("c", "a"))
        header = path.read_text().splitlines()[0]
        assert header == "c,a"

    def test_write_csv_empty(self, tmp_path):
        path = write_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""

    def test_write_json(self, tmp_path):
        path = write_json({"x": [1, 2, 3]}, tmp_path / "data.json")
        assert json.loads(path.read_text()) == {"x": [1, 2, 3]}


class TestAsciiChart:
    def test_basic_chart(self):
        chart = ascii_bar_chart(["a", "bb"], [1.0, 2.0], title="demo")
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("a ") and "#" in lines[1]
        # The larger value gets the longer bar.
        assert lines[2].count("#") > lines[1].count("#")

    def test_log_scale(self):
        chart = ascii_bar_chart(["q1", "q2"], [1.0, 1000.0], log_scale=True)
        lines = chart.splitlines()
        # On a log axis the 1000x difference is only a 3x-ish bar difference.
        assert lines[1].count("#") >= lines[0].count("#")
        assert lines[1].count("#") <= lines[0].count("#") * 50

    def test_zero_values(self):
        chart = ascii_bar_chart(["a"], [0.0])
        assert "0.000" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_bar_chart([], [], title="t")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])


class TestRunExport:
    def test_run_payload_structure(self, tiny_run):
        payload = run_payload(tiny_run)
        assert payload["dataset"] == "figure-1a"
        assert len(payload["figure5"]["rows"]) == 2
        assert "mean_cfr" in payload["figure6"]["summary"]

    def test_export_run_writes_artifacts(self, tiny_run, tmp_path):
        artefacts = export_run(tiny_run, tmp_path / "out")
        assert sorted(artefacts) == ["figure5_csv", "figure6_csv", "json"]
        for path in artefacts.values():
            assert path.exists() and path.stat().st_size > 0
        payload = json.loads(artefacts["json"].read_text())
        assert payload["dataset"] == "figure-1a"

    def test_export_run_custom_prefix(self, tiny_run, tmp_path):
        artefacts = export_run(tiny_run, tmp_path, prefix="panelA")
        assert artefacts["figure5_csv"].name == "panelA_figure5.csv"

    def test_chart_renderers(self, tiny_run):
        fig5 = chart_figure5(tiny_run)
        fig6 = chart_figure6(tiny_run)
        assert "MaxMatch elapsed time" in fig5 and "ValidRTF elapsed time" in fig5
        assert "CFR" in fig6 and "Max APR" in fig6
        assert "lk" in fig5 and "xks" in fig6
