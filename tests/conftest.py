"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core import SearchEngine
from repro.datasets import (
    DBLPConfig,
    XMarkConfig,
    generate_dblp,
    generate_xmark,
    publications_tree,
    team_tree,
)
from repro.xmltree import DeweyCode, SubtreeSpec, XMLTree, tree_from_spec


# ---------------------------------------------------------------------- #
# Paper figure instances
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def publications() -> XMLTree:
    """The Figure 1(a) Publications instance."""
    return publications_tree()


@pytest.fixture(scope="session")
def team() -> XMLTree:
    """The Figure 1(b) team instance."""
    return team_tree()


@pytest.fixture(scope="session")
def publications_engine(publications) -> SearchEngine:
    return SearchEngine(publications)


@pytest.fixture(scope="session")
def team_engine(team) -> SearchEngine:
    return SearchEngine(team)


# ---------------------------------------------------------------------- #
# Small synthetic documents (kept tiny so the suite stays fast)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def small_dblp() -> XMLTree:
    return generate_dblp(DBLPConfig(publications=60, seed=7))


@pytest.fixture(scope="session")
def small_xmark() -> XMLTree:
    return generate_xmark(XMarkConfig(scale="standard", base_items=20, seed=7))


# ---------------------------------------------------------------------- #
# Random-tree generation shared by property-based tests
# ---------------------------------------------------------------------- #
LABEL_POOL = ("a", "b", "c", "d", "e")
WORD_POOL = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta")


def random_tree(seed: int, max_children: int = 3, max_depth: int = 4,
                max_nodes: int = 40) -> XMLTree:
    """A deterministic random labelled tree with word-bearing leaves."""
    rng = random.Random(seed)
    counter = {"nodes": 1}

    def make(depth: int) -> SubtreeSpec:
        label = rng.choice(LABEL_POOL)
        text = None
        if rng.random() < 0.6:
            text = " ".join(rng.choice(WORD_POOL)
                            for _ in range(rng.randint(1, 3)))
        node = SubtreeSpec(label, text)
        if depth < max_depth and counter["nodes"] < max_nodes:
            for _ in range(rng.randint(0, max_children)):
                if counter["nodes"] >= max_nodes:
                    break
                counter["nodes"] += 1
                node.add(make(depth + 1))
        return node

    return tree_from_spec(make(0), name=f"random-{seed}")


def random_keyword_lists(tree: XMLTree, seed: int,
                         keyword_count: int = 2) -> Dict[str, List[DeweyCode]]:
    """Random non-empty posting lists over a tree's nodes."""
    rng = random.Random(seed * 31 + keyword_count)
    nodes = [node.dewey for node in tree.iter_preorder()]
    lists: Dict[str, List[DeweyCode]] = {}
    for index in range(keyword_count):
        size = rng.randint(1, max(1, min(5, len(nodes))))
        lists[f"kw{index}"] = sorted(rng.sample(nodes, size))
    return lists


@pytest.fixture
def make_random_tree():
    """Factory fixture for deterministic random trees."""
    return random_tree


@pytest.fixture
def make_random_keyword_lists():
    """Factory fixture for deterministic random posting lists."""
    return random_keyword_lists


# ---------------------------------------------------------------------- #
# Backend-parity helpers
# ---------------------------------------------------------------------- #
@pytest.fixture
def store_agreement():
    """Assert that a store's posting lists equal the inverted-index ones.

    The fixture form of :func:`repro.storage.agreement_with_index`: call it
    with ``(tree, store, name, keywords)`` and it fails the test naming every
    disagreeing keyword.
    """
    from repro.storage import agreement_with_index

    def check(tree, store, name, keywords):
        agreement = agreement_with_index(tree, store, name, keywords)
        disagreeing = sorted(k for k, ok in agreement.items() if not ok)
        assert not disagreeing, (
            f"store postings disagree with the inverted index for {disagreeing}")

    return check
