"""Property-based posting-list invariants, checked across every backend.

Seeded random documents (the shared ``random_tree`` generator from
``conftest``) are indexed three ways — in-memory inverted index, sqlite
store, sharded stores — and for every word of the vocabulary the backends
must agree on the :class:`PostingSource` contract:

* posting lists strictly sorted in document (Dewey) order, duplicate-free;
* ``encode_dewey`` / ``decode_dewey`` round-trips every posting;
* ``frequency(w) == len(postings(w))``;
* identical vocabularies and identical posting lists across backends;
* the batched ``keyword_nodes`` path equals per-keyword ``postings``.
"""

from __future__ import annotations

import pytest

from repro.index import InvertedIndex, PostingSource
from repro.storage import (
    ShardedPostingSource,
    SQLitePostingSource,
    SQLiteStore,
    decode_dewey,
    encode_dewey,
)

SEEDS = (3, 11, 29, 47, 101)


def build_sources(tree):
    """The three backends over one document, keyed by name."""
    index = InvertedIndex(tree)
    store = SQLiteStore()
    store.store_tree(tree, tree.name)
    sqlite_source = SQLitePostingSource(store, tree.name)
    sharded_source = ShardedPostingSource.from_tree(tree, shard_count=3,
                                                    name=tree.name)
    return {"memory": index, "sqlite": sqlite_source, "sharded": sharded_source}


@pytest.fixture(params=SEEDS, ids=lambda seed: f"seed{seed}")
def sources(request, make_random_tree):
    return build_sources(make_random_tree(request.param))


def test_sources_satisfy_protocol(sources):
    for source in sources.values():
        assert isinstance(source, PostingSource)


def test_vocabulary_equal_across_backends(sources):
    vocabularies = {name: source.vocabulary()
                    for name, source in sources.items()}
    assert vocabularies["memory"] == vocabularies["sqlite"] \
        == vocabularies["sharded"]
    assert vocabularies["memory"], "random documents must index something"


def test_posting_lists_identical_and_strictly_sorted(sources):
    vocabulary = sources["memory"].vocabulary()
    for word in vocabulary:
        reference = list(sources["memory"].postings(word).deweys)
        for name in ("sqlite", "sharded"):
            candidate = list(sources[name].postings(word).deweys)
            assert candidate == reference, (word, name)
        assert reference, f"vocabulary word {word!r} with empty postings"
        for left, right in zip(reference, reference[1:]):
            assert left < right, f"posting list of {word!r} not strictly sorted"


def test_frequency_equals_posting_length(sources):
    vocabulary = sources["memory"].vocabulary()
    for name, source in sources.items():
        for word in vocabulary:
            assert source.frequency(word) == len(source.postings(word)), \
                (name, word)
        assert source.frequency("definitelyabsentword") == 0, name


def test_encode_decode_round_trips_every_posting(sources):
    for word in sources["memory"].vocabulary():
        for dewey in sources["memory"].postings(word):
            components = tuple(dewey.components)
            assert decode_dewey(encode_dewey(components)) == components


def test_batched_keyword_nodes_equals_postings(sources):
    vocabulary = sources["memory"].vocabulary()
    probe = vocabulary[:5] + ["definitelyabsentword"]
    for name, source in sources.items():
        batched = source.keyword_nodes(probe)
        for word in probe:
            assert batched[word] == list(source.postings(word).deweys), \
                (name, word)


def test_node_lookups_agree_with_tree(make_random_tree):
    """node_label / node_words of disk backends match the document."""
    tree = make_random_tree(7)
    sources = build_sources(tree)
    index = sources["memory"]
    for node in tree.iter_preorder():
        for name in ("sqlite", "sharded"):
            assert sources[name].node_label(node.dewey) == node.label, name
            assert sources[name].node_words(node.dewey) == \
                index.node_words(node.dewey), name


def test_posting_lru_serves_repeats(make_random_tree):
    """Repeated lookups of one keyword are answered from the source's LRU."""
    tree = make_random_tree(13)
    store = SQLiteStore()
    store.store_tree(tree, "doc")
    source = SQLitePostingSource(store, "doc", lru_size=4)
    word = source.vocabulary()[0]
    first = source.postings(word).deweys
    misses = source.lru_misses
    assert source.postings(word).deweys == first
    assert source.lru_misses == misses  # second lookup hit the LRU
    assert source.lru_hits >= 1
