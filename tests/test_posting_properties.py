"""Property-based posting-list invariants, checked across every backend.

Seeded random documents (the shared ``random_tree`` generator from
``conftest``) are indexed three ways — in-memory inverted index, sqlite
store, sharded stores — and for every word of the vocabulary the backends
must agree on the :class:`PostingSource` contract:

* posting lists strictly sorted in document (Dewey) order, duplicate-free;
* ``encode_dewey`` / ``decode_dewey`` round-trips every posting;
* ``frequency(w) == len(postings(w))``;
* identical vocabularies and identical posting lists across backends;
* the batched ``keyword_nodes`` path equals per-keyword ``postings``;
* the **packed** representation of every backend answers identically to the
  **object** representation (and its blobs round-trip), so the flat-column
  hot loops can never drift from the boxed reference.
"""

from __future__ import annotations

import pytest

from repro.index import InvertedIndex, PackedDeweyList, PostingSource
from repro.storage import (
    ShardedPostingSource,
    SQLitePostingSource,
    SQLiteStore,
    decode_dewey,
    encode_dewey,
)

SEEDS = (3, 11, 29, 47, 101)


def build_sources(tree, representation: str = "packed"):
    """The three backends over one document, keyed by name."""
    index = InvertedIndex(tree, representation=representation)
    store = SQLiteStore()
    store.store_tree(tree, tree.name)
    sqlite_source = SQLitePostingSource(store, tree.name,
                                        representation=representation)
    sharded_source = ShardedPostingSource.from_tree(
        tree, shard_count=3, name=tree.name, representation=representation)
    return {"memory": index, "sqlite": sqlite_source, "sharded": sharded_source}


@pytest.fixture(params=SEEDS, ids=lambda seed: f"seed{seed}")
def sources(request, make_random_tree):
    return build_sources(make_random_tree(request.param))


def test_sources_satisfy_protocol(sources):
    for source in sources.values():
        assert isinstance(source, PostingSource)


def test_vocabulary_equal_across_backends(sources):
    vocabularies = {name: source.vocabulary()
                    for name, source in sources.items()}
    assert vocabularies["memory"] == vocabularies["sqlite"] \
        == vocabularies["sharded"]
    assert vocabularies["memory"], "random documents must index something"


def test_posting_lists_identical_and_strictly_sorted(sources):
    vocabulary = sources["memory"].vocabulary()
    for word in vocabulary:
        reference = list(sources["memory"].postings(word).deweys)
        for name in ("sqlite", "sharded"):
            candidate = list(sources[name].postings(word).deweys)
            assert candidate == reference, (word, name)
        assert reference, f"vocabulary word {word!r} with empty postings"
        for left, right in zip(reference, reference[1:]):
            assert left < right, f"posting list of {word!r} not strictly sorted"


def test_frequency_equals_posting_length(sources):
    vocabulary = sources["memory"].vocabulary()
    for name, source in sources.items():
        for word in vocabulary:
            assert source.frequency(word) == len(source.postings(word)), \
                (name, word)
        assert source.frequency("definitelyabsentword") == 0, name


def test_encode_decode_round_trips_every_posting(sources):
    for word in sources["memory"].vocabulary():
        for dewey in sources["memory"].postings(word):
            components = tuple(dewey.components)
            assert decode_dewey(encode_dewey(components)) == components


def test_batched_keyword_nodes_equals_postings(sources):
    vocabulary = sources["memory"].vocabulary()
    probe = vocabulary[:5] + ["definitelyabsentword"]
    for name, source in sources.items():
        batched = source.keyword_nodes(probe)
        for word in probe:
            assert batched[word] == list(source.postings(word).deweys), \
                (name, word)


def test_node_lookups_agree_with_tree(make_random_tree):
    """node_label / node_words of disk backends match the document."""
    tree = make_random_tree(7)
    sources = build_sources(tree)
    index = sources["memory"]
    for node in tree.iter_preorder():
        for name in ("sqlite", "sharded"):
            assert sources[name].node_label(node.dewey) == node.label, name
            assert sources[name].node_words(node.dewey) == \
                index.node_words(node.dewey), name


@pytest.mark.parametrize("seed", SEEDS, ids=lambda seed: f"seed{seed}")
def test_packed_and_object_representations_agree(make_random_tree, seed):
    """Packed ↔ object parity on every backend of every seeded tree.

    Both representations are built over the same random document and every
    posting list, frequency and batched lookup must match element for
    element.
    """
    tree = make_random_tree(seed)
    sources = build_sources(tree, representation="packed")
    object_sources = build_sources(tree, representation="object")
    vocabulary = sources["memory"].vocabulary()
    probe = vocabulary[:4] + ["definitelyabsentword"]
    for name, packed_source in sources.items():
        object_source = object_sources[name]
        assert packed_source.representation == "packed"
        assert object_source.representation == "object"
        for word in vocabulary:
            packed_list = packed_source.postings(word).deweys
            object_list = object_source.postings(word).deweys
            assert isinstance(packed_list, PackedDeweyList), (name, word)
            assert not isinstance(object_list, PackedDeweyList), (name, word)
            assert list(packed_list) == list(object_list), (name, word)
            assert packed_source.frequency(word) == \
                object_source.frequency(word), (name, word)
        packed_batch = packed_source.keyword_nodes(probe)
        object_batch = object_source.keyword_nodes(probe)
        for word in probe:
            assert list(packed_batch[word]) == list(object_batch[word]), \
                (name, word)


def test_packed_blobs_round_trip_per_keyword(sources):
    """Every stored blob rebuilds the exact posting columns."""
    memory = sources["memory"]
    sqlite_source = sources["sqlite"]
    store = sqlite_source.store
    assert store.has_packed_postings(sqlite_source.document)
    for word in memory.vocabulary():
        packed = store.keyword_packed(sqlite_source.document, word)
        assert packed is not None, word
        assert PackedDeweyList.from_blob(packed.to_blob()) == packed
        assert list(packed) == list(memory.postings(word).deweys), word


def test_legacy_store_without_blobs_falls_back(make_random_tree):
    """A database ingested without ``posting`` rows still answers packed."""
    tree = make_random_tree(19)
    store = SQLiteStore()
    store.store_tree(tree, "doc")
    store._connection.execute("DELETE FROM posting WHERE document = ?",
                              ("doc",))
    store._connection.commit()
    assert not store.has_packed_postings("doc")
    legacy = SQLitePostingSource(store, "doc", representation="packed")
    reference = InvertedIndex(tree, representation="object")
    words = reference.vocabulary()
    for word in words[:10]:
        packed = legacy.postings(word).deweys
        assert isinstance(packed, PackedDeweyList)
        assert list(packed) == list(reference.postings(word).deweys), word
    batch = legacy.keyword_nodes(words[:5] + ["definitelyabsentword"])
    for word in words[:5]:
        assert list(batch[word]) == list(reference.postings(word).deweys)
    assert list(batch["definitelyabsentword"]) == []


def test_predates_posting_table_row_decode_identical_to_packed(
        make_random_tree, tmp_path):
    """A database file written before the ``posting`` table existed answers
    every path — including a query containing an empty (absent) keyword —
    identically to a freshly packed database.

    Unlike ``test_legacy_store_without_blobs_falls_back`` (which empties the
    table) this crafts the raw pre-``posting`` schema on disk, runs the whole
    engine over it and diffs full search results against the packed store.
    """
    import sqlite3

    from repro.core import SearchEngine
    from repro.storage import CREATE_TABLES_SQL, shred_tree

    tree = make_random_tree(23)
    shredded = shred_tree(tree, "doc")
    legacy_path = tmp_path / "legacy.db"
    connection = sqlite3.connect(legacy_path)
    for statement in CREATE_TABLES_SQL:
        if "posting" in statement:
            continue  # the pre-packed schema had no posting table
        connection.execute(statement)
    connection.executemany(
        "INSERT INTO label (document, label, id) VALUES (?, ?, ?)",
        [(shredded.name, row.label, row.label_id) for row in shredded.labels])
    connection.executemany(
        "INSERT INTO element (document, label, dewey, level, "
        "label_number_sequence, content_feature_min, content_feature_max) "
        "VALUES (?, ?, ?, ?, ?, ?, ?)",
        [(shredded.name, row.label, row.dewey, row.level,
          row.label_number_sequence, row.content_feature_min,
          row.content_feature_max) for row in shredded.elements])
    connection.executemany(
        "INSERT INTO value (document, label, dewey, attribute, keyword) "
        "VALUES (?, ?, ?, ?, ?)",
        [(shredded.name, row.label, row.dewey, row.attribute, row.keyword)
         for row in shredded.values])
    connection.commit()
    connection.close()

    legacy_store = SQLiteStore(legacy_path)
    packed_store = SQLiteStore()
    packed_store.store_tree(tree, "doc")
    assert not legacy_store.has_packed_postings("doc")
    assert packed_store.has_packed_postings("doc")

    words = InvertedIndex(tree).vocabulary()
    # A query mixing present keywords with an empty (zero-posting) keyword.
    mixed_query = words[:2] + ["definitelyabsentword"]
    for representation in ("packed", "object"):
        legacy = SQLitePostingSource(legacy_store, "doc",
                                     representation=representation)
        packed = SQLitePostingSource(packed_store, "doc",
                                     representation=representation)
        legacy_lists = legacy.keyword_nodes(mixed_query)
        packed_lists = packed.keyword_nodes(mixed_query)
        assert set(legacy_lists) == set(packed_lists)
        for keyword in legacy_lists:
            assert list(legacy_lists[keyword]) == \
                list(packed_lists[keyword]), (keyword, representation)
        assert list(legacy.postings("definitelyabsentword").deweys) == []
        assert legacy.frequency("definitelyabsentword") == 0
        for algorithm in ("validrtf", "maxmatch"):
            legacy_result = SearchEngine(
                source=SQLitePostingSource(
                    legacy_store, "doc",
                    representation=representation)).search(
                        " ".join(mixed_query), algorithm)
            packed_result = SearchEngine(
                source=SQLitePostingSource(
                    packed_store, "doc",
                    representation=representation)).search(
                        " ".join(mixed_query), algorithm)
            assert legacy_result.roots() == packed_result.roots()
            assert [f.kept_nodes for f in legacy_result] == \
                [f.kept_nodes for f in packed_result], (algorithm,
                                                        representation)
    legacy_store.close()
    packed_store.close()


def test_legacy_fallback_skips_pointless_blob_probes(make_random_tree):
    """On a no-blob document, per-keyword fetches go straight to row decode.

    Regression guard for the legacy fast path: once ``has_packed_postings``
    answered False, ``postings()`` must not keep issuing one doomed
    ``SELECT ... FROM posting`` per keyword before each row-decode fallback.
    """
    tree = make_random_tree(29)
    store = SQLiteStore()
    store.store_tree(tree, "doc")
    store._connection.execute("DELETE FROM posting WHERE document = ?",
                              ("doc",))
    store._connection.commit()
    source = SQLitePostingSource(store, "doc", lru_size=0)
    words = source.vocabulary()[:5]
    for word in words:
        source.postings(word)  # prime the has-blobs check

    probes = []
    original = store.keyword_packed

    def counting_keyword_packed(name, keyword):
        probes.append(keyword)
        return original(name, keyword)

    store.keyword_packed = counting_keyword_packed
    try:
        for word in words:
            assert list(source.postings(word).deweys)
    finally:
        store.keyword_packed = original
    assert probes == [], "legacy documents must not probe the posting table " \
                         "once its absence is known"


def test_posting_lru_serves_repeats(make_random_tree):
    """Repeated lookups of one keyword are answered from the source's LRU."""
    tree = make_random_tree(13)
    store = SQLiteStore()
    store.store_tree(tree, "doc")
    source = SQLitePostingSource(store, "doc", lru_size=4)
    word = source.vocabulary()[0]
    first = source.postings(word).deweys
    misses = source.lru_misses
    assert source.postings(word).deweys == first
    assert source.lru_misses == misses  # second lookup hit the LRU
    assert source.lru_hits >= 1
