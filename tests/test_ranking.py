"""Tests for the RTF ranking extension (the paper's future-work item)."""

from __future__ import annotations

import pytest

from repro.core import Query, RankingWeights, rank_fragments, rank_result
from repro.datasets import PAPER_QUERIES


class TestRankingWeights:
    def test_normalized_sums_to_one(self):
        weights = RankingWeights(2.0, 1.0, 1.0).normalized()
        assert weights.specificity + weights.compactness + weights.coverage == \
            pytest.approx(1.0)
        assert weights.specificity == pytest.approx(0.5)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            RankingWeights(0.0, 0.0, 0.0).normalized()


class TestRankResult:
    def test_empty_result_ranks_empty(self, publications):
        assert rank_fragments(publications, Query.parse("xml"), []) == []

    def test_deeper_root_ranks_first_for_q2(self, publications_engine, publications):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        ranked = rank_result(publications, result)
        assert len(ranked) == 2
        # The self-contained ref fragment is deeper and more compact than the
        # article fragment, so it comes first.
        assert str(ranked[0].fragment.root) == "0.2.0.3.0"
        assert ranked[0].score >= ranked[1].score

    def test_scores_monotone_in_order(self, publications_engine, publications):
        result = publications_engine.search(PAPER_QUERIES["Q3"], "validrtf")
        ranked = publications_engine.rank(result)
        scores = [item.score for item in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_components_in_unit_range(self, publications_engine, publications):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        for item in publications_engine.rank(result):
            assert 0.0 <= item.specificity <= 1.0
            assert 0.0 <= item.coverage <= 1.0
            assert item.compactness <= 1.0

    def test_coverage_counts_all_keywords(self, publications_engine, publications):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        ranked = publications_engine.rank(result)
        assert all(item.coverage == pytest.approx(1.0) for item in ranked)

    def test_weights_change_order(self, team_engine, team):
        result = team_engine.search(PAPER_QUERIES["Q4"], "validrtf")
        default_ranked = team_engine.rank(result)
        compact_only = team_engine.rank(result, RankingWeights(0.0001, 1.0, 0.0001))
        assert len(default_ranked) == len(compact_only) == 1
