"""Tests for the RTF ranking extension (the paper's future-work item)."""

from __future__ import annotations

import pytest

from repro.core import (
    Query,
    RankingWeights,
    ScoreBounds,
    bounds_from_impacts,
    combine_score,
    explain_score,
    rank_fragments,
    rank_result,
)
from repro.corpus import CorpusSearchEngine
from repro.datasets import PAPER_QUERIES
from repro.index import EMPTY_IMPACT, KeywordImpact
from repro.xmltree import SubtreeSpec, tree_from_spec


def _deep_shallow_trees():
    """Two documents whose best fragments sit at very different depths.

    The doc ids are chosen so the *shallow* document wins any score tie
    (ties break on doc id): under the old per-document normalization both
    documents' best fragments scored a perfect 1.0 — each was the deepest
    fragment *of its own document* — and the shallow document was served
    first.  Corpus-global bounds make depth absolute, so the genuinely
    deeper fragment must win.
    """
    deep = SubtreeSpec("a")
    branch = SubtreeSpec("b")
    middle = SubtreeSpec("c")
    middle.add(SubtreeSpec("d", "apple banana"))
    branch.add(middle)
    deep.add(branch)
    deep.add(SubtreeSpec("e", "apple"))
    deep.add(SubtreeSpec("f", "banana"))
    shallow = SubtreeSpec("r")
    shallow.add(SubtreeSpec("x", "apple banana"))
    return {"z-deep": tree_from_spec(deep, name="z-deep"),
            "a-shallow": tree_from_spec(shallow, name="a-shallow")}


def _three_doc_trees():
    """The deep/shallow pair plus a document missing the query keywords."""
    trees = _deep_shallow_trees()
    unrelated = SubtreeSpec("u")
    unrelated.add(SubtreeSpec("v", "cherry"))
    unrelated.add(SubtreeSpec("w", "apple"))
    trees["m-partial"] = tree_from_spec(unrelated, name="m-partial")
    return trees


class TestRankingWeights:
    def test_normalized_sums_to_one(self):
        weights = RankingWeights(2.0, 1.0, 1.0).normalized()
        assert weights.specificity + weights.compactness + weights.coverage == \
            pytest.approx(1.0)
        assert weights.specificity == pytest.approx(0.5)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            RankingWeights(0.0, 0.0, 0.0).normalized()

    def test_negative_weight_rejected_even_when_sum_positive(self):
        # (2, 2, -1) sums to 3 > 0 and used to slip through; a negative
        # weight silently *inverts* the component it scales.
        with pytest.raises(ValueError, match="coverage.*non-negative"):
            RankingWeights(2.0, 2.0, -1.0).normalized()

    @pytest.mark.parametrize("weights", [(-1.0, 3.0, 3.0), (3.0, -0.5, 3.0),
                                         (3.0, 3.0, -2.0)])
    def test_every_position_checked_for_negativity(self, weights):
        with pytest.raises(ValueError, match="non-negative"):
            RankingWeights(*weights).normalized()


class TestScoreBounds:
    def test_max_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            ScoreBounds(max_depth=0)

    def test_bounds_from_impacts_takes_deepest_nonempty(self):
        impacts = [KeywordImpact(count=3, max_depth=2),
                   KeywordImpact(count=1, max_depth=5),
                   EMPTY_IMPACT]
        assert bounds_from_impacts(impacts).max_depth == 5

    def test_bounds_from_no_impacts_floor_at_one(self):
        assert bounds_from_impacts([]).max_depth == 1
        assert bounds_from_impacts([EMPTY_IMPACT]).max_depth == 1

    def test_combine_score_matches_explain_sum(self):
        normalized = RankingWeights(2.0, 1.0, 1.0).normalized()
        score = combine_score(normalized, 0.75, 0.5, 1.0)
        expected = (normalized.specificity * 0.75 +
                    normalized.compactness * 0.5 +
                    normalized.coverage * 1.0)
        assert score == expected


class TestCorpusComparableScores:
    def test_deeper_document_wins_across_documents(self):
        # Regression: per-document normalization scored both documents'
        # best fragments 1.0 and the tie-break served the shallow document
        # first.  Global bounds must rank the deeper fragment on top.
        engine = CorpusSearchEngine.from_trees(_deep_shallow_trees())
        ranked = engine.search_ranked("apple banana", top_k=2)
        assert ranked[0].doc_id == "z-deep"
        assert str(ranked[0].fragment.root) == "0.0.0.0"
        assert ranked[0].score > ranked[1].score

    def test_scores_independent_of_doc_filter(self):
        # Bounds are corpus-global, never filter-relative: a document's
        # fragments score identically alone and corpus-wide.
        engine = CorpusSearchEngine.from_trees(_deep_shallow_trees())
        alone = engine.search_ranked("apple banana",
                                     doc_filter=["a-shallow"])
        corpus_wide = [entry for entry
                       in engine.search_ranked("apple banana")
                       if entry.doc_id == "a-shallow"]
        assert [(str(e.fragment.root), e.score) for e in alone] == \
            [(str(e.fragment.root), e.score) for e in corpus_wide]

    def test_specificity_is_absolute_depth_over_corpus_max(self):
        engine = CorpusSearchEngine.from_trees(_deep_shallow_trees())
        by_doc = {entry.doc_id: entry.ranked
                  for entry in engine.search_ranked("apple banana", top_k=2)}
        # Corpus max depth is 3 (the deep leaf); the shallow fragment root
        # sits at level 1.
        assert by_doc["z-deep"].specificity == pytest.approx(1.0)
        assert by_doc["a-shallow"].specificity == pytest.approx(1.0 / 3.0)


class TestThresholdDriver:
    def test_early_terminate_requires_top_k(self):
        engine = CorpusSearchEngine.from_trees(_deep_shallow_trees())
        with pytest.raises(ValueError, match="top_k"):
            engine.rank_search("apple banana", early_terminate=True)

    def test_top_k_zero_returns_empty_without_visiting(self):
        engine = CorpusSearchEngine.from_trees(_deep_shallow_trees())
        outcome = engine.rank_search("apple banana", top_k=0,
                                     early_terminate=True)
        assert outcome.ranked == ()
        assert outcome.docs_visited == 0

    def test_missing_keyword_document_never_visited(self):
        engine = CorpusSearchEngine.from_trees(_three_doc_trees())
        outcome = engine.rank_search("apple banana", top_k=10,
                                     early_terminate=True)
        assert outcome.docs_selected == 3
        assert outcome.docs_visited <= 2  # m-partial lacks "banana"
        assert all(entry.doc_id != "m-partial" for entry in outcome.ranked)

    def test_top_one_stops_after_best_bounded_document(self):
        engine = CorpusSearchEngine.from_trees(_deep_shallow_trees())
        outcome = engine.rank_search("apple banana", top_k=1,
                                     early_terminate=True)
        # The deep document's bound (1.0) is visited first and its perfect
        # score strictly beats the shallow document's bound, so one visit
        # suffices.
        assert outcome.docs_visited == 1
        assert outcome.ranked[0].doc_id == "z-deep"

    @pytest.mark.parametrize("top_k", [1, 2, 3, 10])
    def test_early_equals_exhaustive(self, top_k):
        engine = CorpusSearchEngine.from_trees(_three_doc_trees())
        exhaustive = engine.rank_search("apple banana", top_k=top_k)
        early = engine.rank_search("apple banana", top_k=top_k,
                                   early_terminate=True)
        assert [(e.doc_id, str(e.fragment.root), e.score)
                for e in exhaustive.ranked] == \
            [(e.doc_id, str(e.fragment.root), e.score)
             for e in early.ranked]

    def test_rank_of_search_equals_search_ranked(self):
        engine = CorpusSearchEngine.from_trees(_three_doc_trees())
        via_rank = engine.rank(engine.search("apple banana"))
        direct = engine.search_ranked("apple banana")
        assert [(e.doc_id, str(e.fragment.root), e.score)
                for e in via_rank] == \
            [(e.doc_id, str(e.fragment.root), e.score) for e in direct]


class TestScoreExplanation:
    def test_contributions_reproduce_score(self, publications_engine,
                                           publications):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        for item in publications_engine.rank(result):
            explanation = explain_score(item)
            assert sum(c.contribution for c in explanation.components) == \
                pytest.approx(explanation.score)
            assert explanation.score == item.score
            assert [c.name for c in explanation.components] == \
                ["specificity", "compactness", "coverage"]


class TestRankResult:
    def test_empty_result_ranks_empty(self, publications):
        assert rank_fragments(publications, Query.parse("xml"), []) == []

    def test_deeper_root_ranks_first_for_q2(self, publications_engine, publications):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        ranked = rank_result(publications, result)
        assert len(ranked) == 2
        # The self-contained ref fragment is deeper and more compact than the
        # article fragment, so it comes first.
        assert str(ranked[0].fragment.root) == "0.2.0.3.0"
        assert ranked[0].score >= ranked[1].score

    def test_scores_monotone_in_order(self, publications_engine, publications):
        result = publications_engine.search(PAPER_QUERIES["Q3"], "validrtf")
        ranked = publications_engine.rank(result)
        scores = [item.score for item in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_components_in_unit_range(self, publications_engine, publications):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        for item in publications_engine.rank(result):
            assert 0.0 <= item.specificity <= 1.0
            assert 0.0 <= item.coverage <= 1.0
            assert item.compactness <= 1.0

    def test_coverage_counts_all_keywords(self, publications_engine, publications):
        result = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
        ranked = publications_engine.rank(result)
        assert all(item.coverage == pytest.approx(1.0) for item in ranked)

    def test_weights_change_order(self, team_engine, team):
        result = team_engine.search(PAPER_QUERIES["Q4"], "validrtf")
        default_ranked = team_engine.rank(result)
        compact_only = team_engine.rank(result, RankingWeights(0.0001, 1.0, 0.0001))
        assert len(default_ranked) == len(compact_only) == 1
