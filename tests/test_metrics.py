"""Tests for the Section 5.1 effectiveness metrics (CFR, APR, APR', Max APR)."""

from __future__ import annotations

import pytest

from repro.core import (
    PrunedFragment,
    Query,
    SearchResult,
    build_fragment,
    compare_fragments,
    effectiveness,
    summarize_reports,
    unpruned,
)
from repro.core.metrics import EffectivenessReport
from repro.xmltree import DeweyCode

D = DeweyCode.parse


def make_result(publications, algorithm, kept_by_root):
    """Build a SearchResult keeping the given node subsets per root."""
    fragments = []
    for root, (keyword_nodes, kept) in kept_by_root.items():
        fragment = build_fragment(publications, D(root), keyword_nodes)
        fragments.append(PrunedFragment(
            fragment=fragment,
            kept_nodes=tuple(D(code) for code in kept),
            algorithm=algorithm,
        ))
    return SearchResult(query=Query.parse("xml keyword"), algorithm=algorithm,
                        fragments=tuple(fragments))


class TestCompareFragments:
    def test_identical(self, publications):
        fragment = build_fragment(publications, D("0.2.0"), ["0.2.0.1"])
        comparison = compare_fragments(unpruned(fragment, "m"),
                                       unpruned(fragment, "v"))
        assert comparison.identical
        assert comparison.ratio == 0.0
        assert comparison.extra_pruned == 0

    def test_extra_pruning_ratio(self, publications):
        fragment = build_fragment(publications, D("0.2.0"),
                                  ["0.2.0.1", "0.2.0.2"])
        maxmatch = unpruned(fragment, "m")
        validrtf = PrunedFragment(fragment=fragment,
                                  kept_nodes=(D("0.2.0"), D("0.2.0.1")),
                                  algorithm="v")
        comparison = compare_fragments(maxmatch, validrtf)
        assert not comparison.identical
        assert comparison.extra_pruned == 1
        assert comparison.ratio == pytest.approx(1 / 3)

    def test_mismatched_roots_rejected(self, publications):
        first = unpruned(build_fragment(publications, D("0.2.0"), ["0.2.0.1"]))
        second = unpruned(build_fragment(publications, D("0.2.1"), ["0.2.1.1"]))
        with pytest.raises(ValueError):
            compare_fragments(first, second)


class TestEffectiveness:
    def test_cfr_and_apr(self, publications):
        maxmatch = make_result(publications, "maxmatch", {
            "0.2.0": (["0.2.0.1", "0.2.0.2"],
                      ["0.2.0", "0.2.0.1", "0.2.0.2"]),
            "0.2.1": (["0.2.1.1"], ["0.2.1", "0.2.1.1"]),
        })
        validrtf = make_result(publications, "validrtf", {
            "0.2.0": (["0.2.0.1", "0.2.0.2"], ["0.2.0", "0.2.0.1"]),
            "0.2.1": (["0.2.1.1"], ["0.2.1", "0.2.1.1"]),
        })
        report = effectiveness(maxmatch, validrtf)
        assert report.lca_count == 2
        assert report.common_fragments == 1
        assert report.differing_fragments == 1
        assert report.cfr == pytest.approx(0.5)
        assert report.apr == pytest.approx(1 / 3)
        assert report.max_apr == pytest.approx(1 / 3)
        # Only one differing fragment, so APR' has nothing left to average.
        assert report.apr_prime == 0.0

    def test_apr_prime_discards_extreme(self, publications):
        maxmatch = make_result(publications, "maxmatch", {
            "0.2.0": (["0.2.0.1", "0.2.0.2"],
                      ["0.2.0", "0.2.0.1", "0.2.0.2"]),
            "0.2.1": (["0.2.1.1", "0.2.1.2"],
                      ["0.2.1", "0.2.1.1", "0.2.1.2"]),
        })
        validrtf = make_result(publications, "validrtf", {
            # Ratio 2/3 (the extreme fragment).
            "0.2.0": (["0.2.0.1", "0.2.0.2"], ["0.2.0"]),
            # Ratio 1/3 (the regular fragment).
            "0.2.1": (["0.2.1.1", "0.2.1.2"], ["0.2.1", "0.2.1.1"]),
        })
        report = effectiveness(maxmatch, validrtf)
        assert report.max_apr == pytest.approx(2 / 3)
        assert report.apr == pytest.approx((2 / 3 + 1 / 3) / 2)
        assert report.apr_prime == pytest.approx(1 / 3)

    def test_identical_results(self, publications):
        result = make_result(publications, "x", {
            "0.2.0": (["0.2.0.1"], ["0.2.0", "0.2.0.1"]),
        })
        report = effectiveness(result, result)
        assert report.cfr == 1.0
        assert report.apr == report.apr_prime == report.max_apr == 0.0

    def test_root_present_in_only_one_result(self, publications):
        maxmatch = make_result(publications, "m", {
            "0.2.0": (["0.2.0.1"], ["0.2.0", "0.2.0.1"]),
            "0.2.1": (["0.2.1.1"], ["0.2.1", "0.2.1.1"]),
        })
        validrtf = make_result(publications, "v", {
            "0.2.0": (["0.2.0.1"], ["0.2.0", "0.2.0.1"]),
        })
        report = effectiveness(maxmatch, validrtf)
        assert report.lca_count == 2
        assert report.common_fragments == 1
        assert report.cfr == pytest.approx(0.5)

    def test_on_real_paper_queries(self, team_engine):
        outcome = team_engine.compare("grizzlies position")
        report = outcome.report
        # Two "forward" position subtrees, one pruned: 2 nodes out of 9.
        assert report.max_apr == pytest.approx(2 / 9)
        assert report.cfr == 0.0


class TestSummarizeReports:
    def test_empty(self):
        summary = summarize_reports([])
        assert summary["queries"] == 0
        assert summary["mean_cfr"] == 1.0

    def test_aggregates(self):
        reports = [
            EffectivenessReport(query="a", lca_count=2, common_fragments=1,
                                differing_fragments=1, cfr=0.5, apr=0.2,
                                apr_prime=0.0, max_apr=0.2),
            EffectivenessReport(query="b", lca_count=1, common_fragments=1,
                                differing_fragments=0, cfr=1.0, apr=0.0,
                                apr_prime=0.0, max_apr=0.0),
        ]
        summary = summarize_reports(reports)
        assert summary["queries"] == 2
        assert summary["mean_cfr"] == pytest.approx(0.75)
        assert summary["queries_with_extra_pruning"] == 1

    def test_report_as_row(self):
        report = EffectivenessReport(query="a", lca_count=2, common_fragments=1,
                                     differing_fragments=1, cfr=0.5, apr=0.25,
                                     apr_prime=0.1, max_apr=0.4)
        row = report.as_row()
        assert row["query"] == "a"
        assert row["cfr"] == 0.5
        assert row["max_apr"] == 0.4
