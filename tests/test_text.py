"""Tests for tokenization, stop words and node-content extraction."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.text import (
    ContentAnalyzer,
    DEFAULT_STOPWORDS,
    Tokenizer,
    TokenizerConfig,
    filter_stopwords,
    is_stopword,
)
from repro.xmltree import parse_string


class TestStopwords:
    def test_common_words_are_stopwords(self):
        for word in ("the", "and", "of", "is", "with"):
            assert is_stopword(word)
            assert is_stopword(word.upper())

    def test_content_words_are_not(self):
        for word in ("xml", "keyword", "skyline", "database"):
            assert not is_stopword(word)

    def test_filter_preserves_order(self):
        assert filter_stopwords(["the", "xml", "and", "keyword"]) == \
            ["xml", "keyword"]

    def test_custom_stopword_set(self):
        assert filter_stopwords(["alpha", "beta"], stopwords={"alpha"}) == ["beta"]


class TestTokenizer:
    def test_lowercase_and_split(self):
        tokenizer = Tokenizer()
        assert tokenizer.tokenize("XML Keyword-Search!") == \
            ["xml", "keyword", "search"]

    def test_stopwords_removed_by_default(self):
        tokenizer = Tokenizer()
        assert tokenizer.tokenize("the keyword of the search") == \
            ["keyword", "search"]

    def test_stopwords_kept_when_disabled(self):
        tokenizer = Tokenizer(TokenizerConfig(remove_stopwords=False))
        assert "the" in tokenizer.tokenize("the keyword")

    def test_min_token_length(self):
        tokenizer = Tokenizer(TokenizerConfig(min_token_length=3))
        assert tokenizer.tokenize("go xml a1 keyword") == ["xml", "keyword"]

    def test_numbers_are_tokens(self):
        tokenizer = Tokenizer()
        assert "2008" in tokenizer.tokenize("VLDB 2008")

    def test_empty_input(self):
        tokenizer = Tokenizer()
        assert tokenizer.tokenize("") == []
        assert tokenizer.tokenize("   ...   ") == []

    def test_word_set_and_tokenize_many(self):
        tokenizer = Tokenizer()
        words = tokenizer.word_set(["xml keyword", "keyword search"])
        assert words == {"xml", "keyword", "search"}
        tokens = tokenizer.tokenize_many(["xml keyword", "keyword search"])
        assert tokens == ["xml", "keyword", "keyword", "search"]

    def test_normalize_keyword(self):
        tokenizer = Tokenizer()
        assert tokenizer.normalize_keyword("  XML ") == "xml"
        assert tokenizer.normalize_keyword("Keyword-Search") == "keyword"
        # A pure stop word still normalizes to itself rather than vanishing.
        assert tokenizer.normalize_keyword("The") == "the"

    def test_normalize_query_deduplicates(self):
        tokenizer = Tokenizer()
        assert tokenizer.normalize_query(["XML", "xml", "Keyword"]) == \
            ["xml", "keyword"]

    @given(st.text(max_size=80))
    def test_tokens_are_lowercase_alnum(self, text):
        tokenizer = Tokenizer()
        for token in tokenizer.tokenize(text):
            assert token == token.lower()
            assert token.isalnum()
            assert token not in DEFAULT_STOPWORDS


DOCUMENT = """
<article key="a1">
  <title>Dynamic Skyline Query</title>
  <abstract>skyline evaluation with user preferences</abstract>
  <authors><author><name>Ada Fu</name></author></authors>
</article>
"""


class TestContentAnalyzer:
    @pytest.fixture
    def analyzer(self):
        tree = parse_string(DOCUMENT)
        return ContentAnalyzer(tree), tree

    def test_node_content_includes_label_text_attributes(self, analyzer):
        content_analyzer, tree = analyzer
        root_content = content_analyzer.node_content(tree.root)
        assert {"article", "key", "a1"} <= root_content
        title_content = content_analyzer.node_content(tree.node("0.0"))
        assert title_content == {"title", "dynamic", "skyline", "query"}

    def test_is_keyword_node_and_matched_keywords(self, analyzer):
        content_analyzer, tree = analyzer
        title = tree.node("0.0")
        assert content_analyzer.is_keyword_node(title, ["skyline", "missing"])
        assert not content_analyzer.is_keyword_node(title, ["missing"])
        assert content_analyzer.matched_keywords(title, ["skyline", "query", "user"]) \
            == {"skyline", "query"}

    def test_subtree_content_aggregates(self, analyzer):
        content_analyzer, tree = analyzer
        subtree_words = content_analyzer.subtree_content(tree.root)
        assert {"skyline", "preferences", "ada", "fu", "name"} <= subtree_words

    def test_subtree_keywords(self, analyzer):
        content_analyzer, tree = analyzer
        keywords = content_analyzer.subtree_keywords(tree.root,
                                                     ["skyline", "fu", "absent"])
        assert keywords == {"skyline", "fu"}

    def test_keyword_nodes_in_document_order(self, analyzer):
        content_analyzer, tree = analyzer
        nodes = content_analyzer.keyword_nodes("skyline")
        assert [str(node.dewey) for node in nodes] == ["0.0", "0.1"]

    def test_cache_cleared(self, analyzer):
        content_analyzer, tree = analyzer
        content_analyzer.node_content(tree.root)
        content_analyzer.subtree_content(tree.root)
        content_analyzer.clear_cache()
        assert content_analyzer.node_content(tree.root)
