"""Corpus layer unit tests + the 3-document corpus golden regression.

The golden file ``tests/golden/corpus3.json`` stores the expected doc-tagged
fragments of a fixed 3-document corpus (the two paper figures plus a small
hand-written notes document whose vocabulary overlaps both) for every
algorithm, so a refactor that shifts every corpus backend identically still
fails here.  A second golden, ``tests/golden/corpus_updated.json``, pins the
same corpus after a fixed mutation sequence (update ``notes`` via a delta
segment, tombstone ``team``) and is asserted both on the live segment log
and after ``compact()``.  Regenerate — only when corpus semantics
intentionally change — with ``python tests/test_corpus.py regen``.
"""

from __future__ import annotations

import sys

import pytest

from golden_loader import corpus_result_payload, load_golden, save_golden
from repro.core import ALGORITHM_NAMES
from repro.corpus import (
    CorpusPostingSource,
    CorpusSearchEngine,
    corpus_from_trees,
    shard_of_document,
)
from repro.datasets import PAPER_QUERIES, publications_tree, team_tree
from repro.index.packed import PackedDeweyList
from repro.service import rank_stats_payload, ranking_payload
from repro.storage.errors import DocumentNotFound
from repro.xmltree import SubtreeSpec, tree_from_spec

#: The corpus golden's query set: one per-document query per figure document
#: plus two queries whose keywords span several documents.
CORPUS3_QUERIES = {
    "pub-only": PAPER_QUERIES["Q1"],
    "team-only": PAPER_QUERIES["Q4"],
    "cross-name": "name",
    "cross-xml": "xml search",
}

CORPUS3_BACKENDS = ("memory", "sqlite")


def notes_tree():
    """A small deterministic third document overlapping both figure docs."""
    root = SubtreeSpec("notes")
    for text in ("xml search overview", "team name roster",
                 "keyword query basics"):
        root.add(SubtreeSpec("note", text))
    return tree_from_spec(root, name="notes")


def corpus3_trees():
    """The fixed 3-document corpus the golden file stores the truth for."""
    return {"publications": publications_tree(), "team": team_tree(),
            "notes": notes_tree()}


#: The mutated golden's query set: the corpus3 queries (``team-only`` now
#: proves the tombstone is honoured) plus one query only the *updated* notes
#: text can answer (proves the delta segment shadows the base version).
CORPUS_UPDATED_QUERIES = dict(CORPUS3_QUERIES,
                              **{"segment-update": "segment update"})


def updated_notes_tree():
    """The notes document's second version (one note text replaced)."""
    root = SubtreeSpec("notes")
    for text in ("xml search overview", "team name roster",
                 "segment update basics"):
        root.add(SubtreeSpec("note", text))
    return tree_from_spec(root, name="notes")


def corpus_updated_store():
    """corpus3 after the fixed mutation sequence the golden pins.

    Base generation holds all three documents; ``notes`` is then shadowed by
    an updated delta-segment version and ``team`` is tombstoned.
    """
    from repro.storage import SegmentedStore

    store = SegmentedStore()
    for doc_id, tree in corpus3_trees().items():
        store.store_tree(tree, doc_id)
    store.update_document(updated_notes_tree(), "notes")
    store.delete_document("team")
    return store


# ---------------------------------------------------------------------- #
# Golden regression
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def corpus3_engines():
    trees = corpus3_trees()
    return {backend: CorpusSearchEngine.from_trees(trees, backend=backend,
                                                   shard_count=2)
            for backend in CORPUS3_BACKENDS}


@pytest.mark.parametrize("backend", CORPUS3_BACKENDS)
def test_corpus_fragments_match_stored_truth(corpus3_engines, backend):
    golden = load_golden("corpus3")
    engine = corpus3_engines[backend]
    for query_name, entry in golden["queries"].items():
        for algorithm in ALGORITHM_NAMES:
            result = engine.search(entry["text"], algorithm)
            assert corpus_result_payload(result) == \
                entry["algorithms"][algorithm], (query_name, algorithm, backend)


@pytest.mark.parametrize("compacted", (False, True),
                         ids=("segments", "compacted"))
def test_updated_corpus_fragments_match_stored_truth(compacted):
    """The mutated corpus answers the pinned truth — live log or folded."""
    golden = load_golden("corpus_updated")
    store = corpus_updated_store()
    if compacted:
        folded = store.compact()
        assert folded["folded"] == 1 and store.segment_count() == 0
    engine = CorpusSearchEngine.from_store(store)
    assert sorted(engine.source.doc_ids) == ["notes", "publications"]
    for query_name, entry in golden["queries"].items():
        for algorithm in ALGORITHM_NAMES:
            result = engine.search(entry["text"], algorithm)
            assert corpus_result_payload(result) == \
                entry["algorithms"][algorithm], \
                (query_name, algorithm, compacted)
    store.close()


def test_updated_golden_reflects_the_mutations():
    """The pinned truth really shows both the tombstone and the update."""
    golden = load_golden("corpus_updated")
    team_only = golden["queries"]["team-only"]["algorithms"]["validrtf"]
    assert all(entry["doc"] != "team" for entry in team_only["documents"])
    updated = golden["queries"]["segment-update"]["algorithms"]["validrtf"]
    assert [entry["doc"] for entry in updated["documents"]] == ["notes"]


def test_corpus_golden_spans_multiple_documents():
    """The stored truth really exercises cross-document retrieval."""
    golden = load_golden("corpus3")
    cross = golden["queries"]["cross-name"]["algorithms"]["validrtf"]
    assert len(cross["documents"]) >= 2
    assert [entry["doc"] for entry in cross["documents"]] == \
        sorted(entry["doc"] for entry in cross["documents"])


# ---------------------------------------------------------------------- #
# Ranked golden regression
# ---------------------------------------------------------------------- #
#: The ranked golden pins the early-terminated top-3 ranking (wire rows and
#: visit accounting) of the corpus3 queries for every algorithm, so a
#: refactor that shifts scores, order or the threshold driver's skipping on
#: every backend identically still fails here.
RANKED_TOP_K = 3


@pytest.fixture(scope="module")
def ranked_corpus3_engines():
    """corpus3 engines with resident trees (ranking needs them) per backend."""
    trees = corpus3_trees()
    return {backend: CorpusSearchEngine(
        corpus_from_trees(trees, backend=backend, shard_count=2), trees=trees)
        for backend in CORPUS3_BACKENDS}


def _ranked_entry(engine, text, algorithm):
    outcome = engine.rank_search(text, algorithm, top_k=RANKED_TOP_K,
                                 early_terminate=True)
    return {"ranking": ranking_payload(outcome.ranked),
            "rank_stats": rank_stats_payload(outcome)}


@pytest.mark.parametrize("backend", CORPUS3_BACKENDS)
def test_ranked_corpus_matches_stored_truth(ranked_corpus3_engines, backend):
    golden = load_golden("corpus_ranked")
    assert golden["top_k"] == RANKED_TOP_K
    engine = ranked_corpus3_engines[backend]
    for query_name, entry in golden["queries"].items():
        for algorithm in ALGORITHM_NAMES:
            assert _ranked_entry(engine, entry["text"], algorithm) == \
                entry["algorithms"][algorithm], \
                (query_name, algorithm, backend)


def test_ranked_golden_accounting_is_consistent():
    """The pinned truth itself proves the threshold driver skips work."""
    golden = load_golden("corpus_ranked")
    skipped_anywhere = False
    for entry in golden["queries"].values():
        for algorithm_entry in entry["algorithms"].values():
            stats = algorithm_entry["rank_stats"]
            assert stats["docs_visited"] + stats["docs_skipped"] == \
                stats["docs_selected"]
            assert stats["early_terminated"] is True
            assert stats["top_k"] == golden["top_k"]
            skipped_anywhere |= stats["docs_skipped"] > 0
    assert skipped_anywhere, "no golden query ever skipped a document"


# ---------------------------------------------------------------------- #
# Corpus posting-source invariants (the PostingSource contract)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def corpus3_source() -> CorpusPostingSource:
    return corpus_from_trees(corpus3_trees(), backend="memory",
                             shard_count=2)


def test_corpus_postings_are_sorted_and_prefixed(corpus3_source):
    for keyword in ("name", "xml", "team"):
        postings = corpus3_source.postings(keyword)
        codes = list(postings)
        assert codes == sorted(set(codes)), keyword
        ordinals = [code.components[0] for code in codes]
        assert all(0 <= o < len(corpus3_source.doc_ids) for o in ordinals)
        assert ordinals == sorted(ordinals), "doc ordinals must be grouped"
        assert len(postings) == corpus3_source.frequency(keyword)


def test_corpus_keyword_nodes_match_postings(corpus3_source):
    lists = corpus3_source.keyword_nodes(["name", "xml", "absentkeyword"])
    assert list(lists["name"]) == list(corpus3_source.postings("name").deweys)
    assert len(lists["absentkeyword"]) == 0
    assert isinstance(lists["name"], PackedDeweyList)  # packed corpus


def test_corpus_node_lookups_route_on_ordinal(corpus3_source):
    postings = corpus3_source.postings("name")
    first = postings.deweys[0]
    assert corpus3_source.node_label(first) is not None
    assert "name" in corpus3_source.node_words(first)
    # Codes outside the corpus answer absently, never raise.
    from repro.xmltree import DeweyCode
    assert corpus3_source.node_label(DeweyCode((99, 0))) is None
    assert corpus3_source.node_words(DeweyCode((99, 0))) == frozenset()


def test_corpus_vocabulary_is_document_union(corpus3_source):
    vocabulary = set(corpus3_source.vocabulary())
    for doc_id in corpus3_source.doc_ids:
        assert set(corpus3_source.document_source(doc_id).vocabulary()) <= \
            vocabulary


def test_corpus_shards_own_whole_documents(corpus3_source):
    owned = [doc_id for shard in corpus3_source.shards
             for doc_id in shard.doc_ids]
    assert sorted(owned) == sorted(corpus3_source.doc_ids)
    for shard in corpus3_source.shards:
        for doc_id in shard.doc_ids:
            assert shard_of_document(doc_id, len(corpus3_source.shards)) == \
                shard.index
            assert shard.source(doc_id) is \
                corpus3_source.document_source(doc_id)


def test_unknown_documents_raise(corpus3_source):
    engine = CorpusSearchEngine(corpus3_source)
    with pytest.raises(DocumentNotFound):
        corpus3_source.document_source("nope")
    with pytest.raises(DocumentNotFound):
        engine.search("xml", doc_filter=["nope"])
    with pytest.raises(DocumentNotFound):
        engine.search("xml", doc_filter=[])


def test_corpus_cache_round_trip():
    engine = CorpusSearchEngine.from_trees(corpus3_trees(), cache_size=8)
    first = engine.search("name")
    again = engine.search("name")
    assert corpus_result_payload(first) == corpus_result_payload(again)
    stats = engine.cache_stats()
    assert stats.hits >= 1 and engine.cache_enabled
    engine.clear_cache()
    assert engine.cache_stats().size == 0


def test_corpus_rank_merges_across_documents():
    engine = CorpusSearchEngine.from_trees(corpus3_trees())
    ranked = engine.search_ranked("name", top_k=3)
    assert 0 < len(ranked) <= 3
    scores = [entry.score for entry in ranked]
    assert scores == sorted(scores, reverse=True)
    assert len({entry.doc_id for entry in
                engine.search_ranked("name")}) >= 2


# ---------------------------------------------------------------------- #
# CLI round trip: multi-file index, corpus search/compare, doc filter
# ---------------------------------------------------------------------- #
def test_cli_corpus_round_trip(tmp_path, capsys):
    from repro.cli import main
    from repro.xmltree import write_xml_file

    paths = []
    for doc_id, tree in corpus3_trees().items():
        path = tmp_path / f"{doc_id}.xml"
        write_xml_file(tree, path)
        paths.append(str(path))
    db = str(tmp_path / "corpus.db")
    assert main(["index", *paths, "--db", db]) == 0
    out = capsys.readouterr().out
    assert "3 documents" in out and "--backend corpus" in out
    # Growing the corpus without --add is refused (no accidental mixing),
    # and --force does not bypass the guard (it only replaces same names)...
    extra = tmp_path / "extra.xml"
    write_xml_file(notes_tree(), extra)
    assert main(["index", str(extra), "--db", db]) == 1
    assert main(["index", str(extra), "--db", db, "--force"]) == 1
    capsys.readouterr()
    # ...while --force replaces a same-named document in place.
    assert main(["index", str(tmp_path / "notes.xml"), "--db", db,
                 "--force"]) == 0
    capsys.readouterr()

    assert main(["search", "--db", db, "--backend", "corpus", "name"]) == 0
    out = capsys.readouterr().out
    assert "=== document notes" in out and "=== document team" in out
    assert main(["search", "--db", db, "--backend", "corpus", "--doc",
                 "team", "name"]) == 0
    out = capsys.readouterr().out
    assert "=== document team" in out and "notes" not in out
    assert main(["compare", "--db", db, "--backend", "corpus", "name"]) == 0
    out = capsys.readouterr().out
    assert "documents: 3" in out and "[team]" in out


def test_service_config_serves_corpus_document_subset(tmp_path):
    """ServiceConfig(documents=...) restricts a served corpus to the subset
    (regression: serve --backend corpus --doc used to be silently ignored)."""
    from repro.service import ServiceConfig
    from repro.storage import SQLiteStore

    db = str(tmp_path / "corpus.db")
    store = SQLiteStore(db)
    for doc_id, tree in corpus3_trees().items():
        store.store_tree(tree, doc_id)
    store.close()
    config = ServiceConfig(backend="corpus", workers=1, db_path=db,
                           documents=("team",))
    service = config.build()
    try:
        result = service.pool.search("name").result(timeout=30)
        assert set(result.doc_ids) == {"team"}
        engine_id = service.pool.backend_id
        assert "team" in engine_id and "notes" not in engine_id
    finally:
        service.close()


# ---------------------------------------------------------------------- #
# Regeneration entry point (not a test)
# ---------------------------------------------------------------------- #
def _golden_payload(engine, dataset: str, queries) -> dict:
    payload = {"dataset": dataset, "queries": {}}
    for query_name, text in queries.items():
        payload["queries"][query_name] = {
            "text": text,
            "algorithms": {
                algorithm: corpus_result_payload(engine.search(text,
                                                               algorithm))
                for algorithm in ALGORITHM_NAMES
            },
        }
    return payload


def _regenerate() -> None:
    engine = CorpusSearchEngine.from_trees(corpus3_trees())
    path = save_golden("corpus3", _golden_payload(engine, "corpus3",
                                                  CORPUS3_QUERIES))
    print(f"corpus golden regenerated at {path}")
    store = corpus_updated_store()
    updated = CorpusSearchEngine.from_store(store)
    path = save_golden("corpus_updated",
                       _golden_payload(updated, "corpus_updated",
                                       CORPUS_UPDATED_QUERIES))
    store.close()
    print(f"updated-corpus golden regenerated at {path}")
    ranked_trees = corpus3_trees()
    ranked_engine = CorpusSearchEngine(
        corpus_from_trees(ranked_trees, shard_count=2), trees=ranked_trees)
    ranked_payload = {"dataset": "corpus_ranked", "top_k": RANKED_TOP_K,
                      "queries": {}}
    for query_name, text in CORPUS3_QUERIES.items():
        ranked_payload["queries"][query_name] = {
            "text": text,
            "algorithms": {
                algorithm: _ranked_entry(ranked_engine, text, algorithm)
                for algorithm in ALGORITHM_NAMES
            },
        }
    path = save_golden("corpus_ranked", ranked_payload)
    print(f"ranked-corpus golden regenerated at {path}")


if __name__ == "__main__":
    if sys.argv[1:] == ["regen"]:
        _regenerate()
    else:
        print("usage: python tests/test_corpus.py regen", file=sys.stderr)
        sys.exit(2)
