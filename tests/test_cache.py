"""Tests for the query-result cache and the batch-search fast path.

Covers the :class:`QueryResultCache` LRU/statistics semantics on their own,
the cache wiring inside :class:`SearchEngine` (cached and uncached searches
must return identical results, including across ``cid_mode`` changes), and
the ``search_many`` batch API — equivalence with looped ``search`` plus the
repeated-workload speedup the cache statistics make visible.
"""

from __future__ import annotations

import time

import pytest

from repro.core import (
    ALGORITHM_NAMES,
    Query,
    QueryResultCache,
    SearchEngine,
    SearchResult,
    UnknownAlgorithmError,
)
from repro.datasets import PAPER_QUERIES


def make_result(name: str) -> SearchResult:
    return SearchResult(query=Query.parse(name), algorithm="validrtf",
                        fragments=())


def key(name: str) -> tuple:
    return QueryResultCache.key_for("validrtf", Query.parse(name), "minmax")


# ---------------------------------------------------------------------- #
# QueryResultCache unit behaviour
# ---------------------------------------------------------------------- #
class TestQueryResultCache:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            QueryResultCache(0)
        with pytest.raises(ValueError):
            QueryResultCache(-3)

    def test_miss_then_hit(self):
        cache = QueryResultCache(4)
        assert cache.get(key("alpha")) is None
        result = make_result("alpha")
        cache.put(key("alpha"), result)
        assert cache.get(key("alpha")) is result
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == pytest.approx(0.5)

    def test_key_includes_algorithm_and_cid_mode(self):
        query = Query.parse("alpha beta")
        keys = {QueryResultCache.key_for(algorithm, query, cid_mode)
                for algorithm in ("validrtf", "maxmatch")
                for cid_mode in ("minmax", "exact")}
        assert len(keys) == 4

    def test_key_normalizes_query_forms(self):
        # The same logical query in different spellings shares one key.
        assert key("Alpha  Beta") == key(["alpha", "beta"])

    def test_lru_eviction_order(self):
        cache = QueryResultCache(2)
        cache.put(key("a"), make_result("a"))
        cache.put(key("b"), make_result("b"))
        assert cache.get(key("a")) is not None   # refresh "a": "b" is now LRU
        cache.put(key("c"), make_result("c"))    # evicts "b"
        assert key("b") not in cache
        assert key("a") in cache and key("c") in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = QueryResultCache(2)
        first, second = make_result("a"), make_result("a")
        cache.put(key("a"), first)
        cache.put(key("b"), make_result("b"))
        cache.put(key("a"), second)              # refresh, not insert
        cache.put(key("c"), make_result("c"))    # evicts "b", not "a"
        assert cache.get(key("a")) is second
        assert key("b") not in cache
        assert len(cache) == 2

    def test_peek_does_not_touch_recency_or_stats(self):
        cache = QueryResultCache(2)
        cache.put(key("a"), make_result("a"))
        cache.put(key("b"), make_result("b"))
        cache.peek(key("a"))                     # "a" stays LRU
        cache.put(key("c"), make_result("c"))
        assert key("a") not in cache
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_clear_and_reset_stats(self):
        cache = QueryResultCache(2)
        cache.put(key("a"), make_result("a"))
        cache.get(key("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1             # counters survive clear()
        cache.reset_stats()
        assert cache.stats.hits == 0 and cache.stats.misses == 0


# ---------------------------------------------------------------------- #
# SearchEngine wiring
# ---------------------------------------------------------------------- #
def assert_same_answer(left: SearchResult, right: SearchResult) -> None:
    """Byte-identical answers modulo the measured wall-clock time."""
    assert left.query == right.query
    assert left.algorithm == right.algorithm
    assert left.lca_nodes == right.lca_nodes
    assert left.fragments == right.fragments


class TestEngineCache:
    def test_disabled_by_default(self, publications):
        engine = SearchEngine(publications)
        assert not engine.cache_enabled
        stats = engine.cache_stats()
        assert (stats.hits, stats.misses, stats.max_size) == (0, 0, 0)
        engine.clear_cache()  # no-op, must not raise

    def test_repeat_query_is_a_hit(self, publications):
        engine = SearchEngine(publications, cache_size=8)
        first = engine.search(PAPER_QUERIES["Q2"])
        second = engine.search(PAPER_QUERIES["Q2"])
        assert second is first
        stats = engine.cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_cached_equals_uncached_per_algorithm(self, publications, algorithm):
        cached = SearchEngine(publications, cache_size=16)
        uncached = SearchEngine(publications)
        for query in ("xml keyword search", "liu keyword", PAPER_QUERIES["Q2"]):
            for _ in range(2):  # the second pass answers from the cache
                assert_same_answer(cached.search(query, algorithm),
                                   uncached.search(query, algorithm))

    def test_algorithms_do_not_share_entries(self, publications):
        engine = SearchEngine(publications, cache_size=8)
        validrtf = engine.search("xml keyword search", "validrtf")
        maxmatch = engine.search("xml keyword search", "maxmatch")
        assert validrtf.algorithm == "validrtf"
        assert maxmatch.algorithm == "maxmatch"
        assert engine.cache_stats().misses == 2

    def test_unknown_algorithm_still_rejected(self, publications):
        engine = SearchEngine(publications, cache_size=8)
        with pytest.raises(UnknownAlgorithmError):
            engine.search("xml", algorithm="bogus")

    def test_cid_mode_change_does_not_serve_stale_results(self, publications):
        cached = SearchEngine(publications, cache_size=16)
        query = PAPER_QUERIES["Q2"]
        minmax_answer = cached.search(query)
        cached.set_cid_mode("exact")
        assert cached.cid_mode == "exact"
        assert_same_answer(
            cached.search(query),
            SearchEngine(publications, cid_mode="exact").search(query))
        # Switching back revalidates the original entries.
        cached.set_cid_mode("minmax")
        assert cached.search(query) is minmax_answer

    def test_set_cid_mode_rejects_unknown_mode(self, publications):
        engine = SearchEngine(publications, cache_size=4)
        with pytest.raises(ValueError):
            engine.set_cid_mode("bogus")

    def test_query_spellings_share_one_entry(self, publications):
        engine = SearchEngine(publications, cache_size=8)
        first = engine.search("XML  Keyword Search")
        second = engine.search(["xml", "keyword", "search"])
        assert second is first


# ---------------------------------------------------------------------- #
# search_many: equivalence and the shared fast path
# ---------------------------------------------------------------------- #
class TestSearchMany:
    QUERIES = ("xml keyword search", "liu keyword", "search algorithm", "xml")

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_matches_looped_search(self, publications, algorithm):
        engine = SearchEngine(publications)
        batch = engine.search_many(self.QUERIES, algorithm)
        assert len(batch) == len(self.QUERIES)
        for query, result in zip(self.QUERIES, batch):
            assert_same_answer(result, engine.search(query, algorithm))

    def test_empty_batch(self, publications_engine):
        assert publications_engine.search_many([]) == []

    def test_results_in_input_order_with_duplicates(self, publications):
        engine = SearchEngine(publications, cache_size=8)
        batch = engine.search_many(["xml", "liu keyword", "xml"])
        assert batch[0].query == batch[2].query == Query.parse("xml")
        assert batch[1].query == Query.parse("liu keyword")
        # Duplicates within one batch share a single computation and lookup.
        assert batch[0] is batch[2]
        stats = engine.cache_stats()
        assert (stats.hits, stats.misses) == (0, 2)

    def test_duplicates_deduped_without_cache_too(self, publications):
        engine = SearchEngine(publications)
        batch = engine.search_many(["xml", "xml keyword", "xml"])
        assert batch[0] is batch[2]

    def test_unmatched_keyword_yields_empty_result(self, publications):
        engine = SearchEngine(publications)
        batch = engine.search_many(["xml", "zzzunmatchedzzz"])
        assert batch[0].count > 0
        assert batch[1].count == 0

    def test_cache_hits_across_batches(self, small_dblp):
        engine = SearchEngine(small_dblp, cache_size=32)
        queries = ["xml keyword", "database query", "xml keyword"]
        engine.search_many(queries)
        stats = engine.cache_stats()
        assert (stats.hits, stats.misses) == (0, 2)
        engine.search_many(queries)
        stats = engine.cache_stats()
        assert (stats.hits, stats.misses) == (2, 2)

    def test_repeated_workload_speedup(self, small_dblp):
        """Acceptance check: cached ``search_many`` beats the uncached
        ``search`` loop on a repeated-query workload, with identical answers
        and the reuse made visible by the cache statistics counters."""
        unique = ["xml keyword", "database query", "query processing",
                  "xml database"]
        passes = 5

        uncached = SearchEngine(small_dblp)
        started = time.perf_counter()
        looped = [uncached.search(query)
                  for _ in range(passes) for query in unique]
        uncached_seconds = time.perf_counter() - started

        cached = SearchEngine(small_dblp, cache_size=64)
        started = time.perf_counter()
        batched = []
        for _ in range(passes):
            batched.extend(cached.search_many(unique))
        cached_seconds = time.perf_counter() - started

        for slow, fast in zip(looped, batched):
            assert_same_answer(slow, fast)
        stats = cached.cache_stats()
        assert stats.misses == len(unique)
        assert stats.hits == (passes - 1) * len(unique)
        assert cached_seconds < uncached_seconds, (
            f"cached batches ({cached_seconds:.4f}s) not faster than uncached "
            f"loop ({uncached_seconds:.4f}s) despite {stats.hits} cache hits")


# ---------------------------------------------------------------------- #
# Thread safety (the serving layer shares one cache across workers)
# ---------------------------------------------------------------------- #
class TestCacheThreadSafety:
    def test_concurrent_hammer_preserves_invariants(self):
        """Many threads get/put/clear one small cache; nothing corrupts.

        The LRU must never exceed its capacity, every returned value must be
        the one stored under its key (no cross-key bleed), and no counter
        increment may be lost: with ``threads * iterations`` ``get`` calls
        in total, the hit+miss sum must equal exactly that.
        """
        import threading

        cache = QueryResultCache(8)
        names = [f"kw{i}" for i in range(24)]
        results = {name: make_result(name) for name in names}
        threads, iterations = 8, 400
        errors = []
        barrier = threading.Barrier(threads)

        def hammer(seed: int) -> None:
            try:
                barrier.wait()
                for step in range(iterations):
                    name = names[(seed * 7 + step) % len(names)]
                    got = cache.get(key(name))
                    if got is None:
                        cache.put(key(name), results[name])
                    elif got is not results[name]:
                        raise AssertionError(
                            f"cache returned another query's result for {name}")
                    if step % 97 == 0:
                        cache.clear()
                    if len(cache) > cache.max_size:
                        raise AssertionError("LRU exceeded its capacity")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        workers = [threading.Thread(target=hammer, args=(index,))
                   for index in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors, errors
        stats = cache.stats
        assert stats.hits + stats.misses == threads * iterations
        assert len(cache) <= cache.max_size
