"""Unit behaviour of the serving-layer components.

Engine pool (per-worker engines over one shared snapshot), request batcher
(coalescing, flush-on-size, flush-on-window, error fan-out), admission
controller (bounded depth, typed shedding, deadlines) and the protocol's
canonical encoding — each exercised on its own, without a TCP socket.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core import SearchEngine
from repro.datasets import PAPER_QUERIES
from repro.service import (
    ERROR_OVERLOADED,
    ERROR_TIMEOUT,
    AdmissionController,
    EnginePool,
    RequestBatcher,
    ServiceError,
    decode_message,
    encode_message,
    result_payload,
)


# ---------------------------------------------------------------------- #
# EnginePool
# ---------------------------------------------------------------------- #
class TestEnginePool:
    def test_rejects_bad_worker_count(self, publications):
        with pytest.raises(ValueError):
            EnginePool.for_backend("memory", tree=publications, workers=0)

    def test_unknown_backend_rejected(self, publications):
        with pytest.raises(ValueError):
            EnginePool.for_backend("postgres", tree=publications)

    def test_memory_backend_needs_tree(self):
        with pytest.raises(ValueError):
            EnginePool.for_backend("memory")

    def test_sqlite_backend_without_tree_or_document(self):
        with pytest.raises(ValueError):
            EnginePool.for_backend("sqlite")

    def test_warm_builds_one_engine_per_worker(self, publications):
        with EnginePool.for_backend("memory", tree=publications,
                                    workers=3) as pool:
            assert pool.engine_count == 0
            assert pool.warm() == 3
            assert pool.engine_count == 3
            assert pool.backend_id == "memory"

    def test_workers_share_one_memory_snapshot(self, publications):
        with EnginePool.for_backend("memory", tree=publications,
                                    workers=3) as pool:
            pool.warm()
            sources = {id(engine.source) for engine in pool._engines}
            assert len(sources) == 1

    def test_search_matches_direct_engine(self, publications,
                                          publications_engine):
        with EnginePool.for_backend("memory", tree=publications,
                                    workers=2) as pool:
            for name in ("Q1", "Q2", "Q3"):
                served = pool.search(PAPER_QUERIES[name]).result(30)
                direct = publications_engine.search(PAPER_QUERIES[name])
                assert result_payload(served) == result_payload(direct)

    @pytest.mark.parametrize("backend", ["sqlite", "sharded"])
    def test_disk_backends_serve_concurrently(self, publications,
                                              publications_engine, backend):
        with EnginePool.for_backend(backend, tree=publications, workers=3,
                                    shards=3, document="pub") as pool:
            futures = [pool.search(PAPER_QUERIES["Q2"]) for _ in range(12)]
            expected = result_payload(
                publications_engine.search(PAPER_QUERIES["Q2"]))
            for future in futures:
                assert result_payload(future.result(30)) == expected

    def test_per_request_cid_mode_switch(self, publications):
        with EnginePool.for_backend("memory", tree=publications,
                                    workers=1) as pool:
            direct = SearchEngine(publications, cid_mode="exact")
            served = pool.search(PAPER_QUERIES["Q2"],
                                 cid_mode="exact").result(30)
            assert result_payload(served) == \
                result_payload(direct.search(PAPER_QUERIES["Q2"]))
            # ...and back: the default mode still answers correctly.
            default = SearchEngine(publications)
            served = pool.search(PAPER_QUERIES["Q2"],
                                 cid_mode="minmax").result(30)
            assert result_payload(served) == \
                result_payload(default.search(PAPER_QUERIES["Q2"]))

    def test_cache_stats_aggregate_across_workers(self, publications):
        with EnginePool.for_backend("memory", tree=publications, workers=2,
                                    cache_size=16) as pool:
            for _ in range(6):
                pool.search(PAPER_QUERIES["Q1"]).result(30)
            stats = pool.cache_stats()
            assert stats.lookups == 6
            assert stats.hits + stats.misses == 6
            assert stats.hits >= 4  # at most one cold miss per worker

    def test_submit_after_shutdown_raises(self, publications):
        pool = EnginePool.for_backend("memory", tree=publications, workers=1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.search("xml")


# ---------------------------------------------------------------------- #
# RequestBatcher
# ---------------------------------------------------------------------- #
@pytest.fixture()
def memory_pool(publications):
    with EnginePool.for_backend("memory", tree=publications,
                                workers=2) as pool:
        yield pool


class TestRequestBatcher:
    def test_knob_validation(self, memory_pool):
        with pytest.raises(ValueError):
            RequestBatcher(memory_pool, max_batch_size=0)
        with pytest.raises(ValueError):
            RequestBatcher(memory_pool, max_wait_seconds=-1)

    def test_concurrent_submissions_coalesce(self, memory_pool,
                                             publications_engine):
        batcher = RequestBatcher(memory_pool, max_batch_size=8,
                                 max_wait_seconds=0.05)
        queries = [PAPER_QUERIES[name] for name in ("Q1", "Q2", "Q3")]

        async def drive():
            return await asyncio.gather(
                *(batcher.submit(query) for query in queries))

        results = asyncio.run(drive())
        for query, result in zip(queries, results):
            assert result_payload(result) == \
                result_payload(publications_engine.search(query))
        stats = batcher.stats()
        assert stats["requests"] == 3
        assert stats["batches"] == 1  # one window, one engine-level batch
        assert stats["largest_batch"] == 3

    def test_flush_on_size_beats_the_window(self, memory_pool):
        batcher = RequestBatcher(memory_pool, max_batch_size=2,
                                 max_wait_seconds=30.0)

        async def drive():
            return await asyncio.wait_for(
                asyncio.gather(batcher.submit(PAPER_QUERIES["Q1"]),
                               batcher.submit(PAPER_QUERIES["Q2"])),
                timeout=10)

        results = asyncio.run(drive())
        assert len(results) == 2
        assert batcher.stats()["size_flushes"] == 1

    def test_algorithms_batch_separately(self, memory_pool):
        batcher = RequestBatcher(memory_pool, max_batch_size=8,
                                 max_wait_seconds=0.02)

        async def drive():
            return await asyncio.gather(
                batcher.submit(PAPER_QUERIES["Q1"], "validrtf"),
                batcher.submit(PAPER_QUERIES["Q1"], "maxmatch"))

        validrtf, maxmatch = asyncio.run(drive())
        assert validrtf.algorithm != maxmatch.algorithm
        assert batcher.stats()["batches"] == 2

    def test_worker_failure_fans_out_as_service_error(self, memory_pool):
        batcher = RequestBatcher(memory_pool, max_batch_size=2,
                                 max_wait_seconds=0.01)

        async def drive():
            # The empty query fails engine-side (EmptyQueryError); the
            # batcher must surface the worker's failure as a typed error.
            with pytest.raises(ServiceError):
                await batcher.submit("")

        asyncio.run(drive())


# ---------------------------------------------------------------------- #
# AdmissionController
# ---------------------------------------------------------------------- #
class TestAdmissionController:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(timeout_seconds=0)

    def test_sheds_load_beyond_the_bound(self):
        admission = AdmissionController(max_inflight=2)
        admission.acquire()
        admission.acquire()
        with pytest.raises(ServiceError) as excinfo:
            admission.acquire()
        assert excinfo.value.code == ERROR_OVERLOADED
        admission.release()
        admission.acquire()  # a slot freed up again
        stats = admission.stats()
        assert stats["rejected"] == 1
        assert stats["admitted"] == 3
        assert stats["peak_inflight"] == 2

    def test_release_without_acquire_is_a_bug(self):
        with pytest.raises(RuntimeError):
            AdmissionController().release()

    def test_deadline_becomes_typed_timeout(self):
        admission = AdmissionController(timeout_seconds=0.01)

        async def drive():
            with pytest.raises(ServiceError) as excinfo:
                await admission.run(asyncio.sleep(5))
            assert excinfo.value.code == ERROR_TIMEOUT

        asyncio.run(drive())
        assert admission.stats()["timed_out"] == 1

    def test_context_manager_balances_counts(self):
        admission = AdmissionController(max_inflight=1)
        with admission:
            assert admission.inflight == 1
        assert admission.inflight == 0

    def test_thread_hammer_never_exceeds_bound(self):
        admission = AdmissionController(max_inflight=3)
        overshoot = []

        def worker() -> None:
            for _ in range(200):
                try:
                    with admission:
                        if admission.inflight > 3:
                            overshoot.append(admission.inflight)
                except ServiceError:
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not overshoot
        stats = admission.stats()
        assert stats["inflight"] == 0
        assert stats["admitted"] + stats["rejected"] == 8 * 200


# ---------------------------------------------------------------------- #
# Protocol framing
# ---------------------------------------------------------------------- #
class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "search", "query": "xml keyword", "id": 7}
        assert decode_message(encode_message(message)) == message

    def test_encoding_is_canonical(self):
        left = encode_message({"b": 1, "a": 2})
        right = encode_message({"a": 2, "b": 1})
        assert left == right  # key order never leaks into the bytes

    def test_bad_lines_are_typed(self):
        with pytest.raises(ServiceError):
            decode_message(b"not json\n")
        with pytest.raises(ServiceError):
            decode_message(b"[1, 2, 3]\n")

    def test_result_payload_excludes_timing(self, publications_engine):
        result = publications_engine.search(PAPER_QUERIES["Q1"])
        payload = result_payload(result)
        assert "elapsed" not in str(sorted(payload))
        again = result_payload(result.with_timing(123.0))
        assert payload == again
