"""Observability unit tests: registry, merge, histograms, spans, tracing.

Three layers under test:

* the :mod:`repro.obs` primitives themselves (catalogue-validated series,
  fixed-bucket histograms, snapshot/merge semantics, Prometheus text);
* the trace span tree (nesting, timing accounting, rendering);
* the pipeline instrumentation — ``search_traced`` must produce one span
  per stage on every algorithm and every backend, and an attached registry
  must fill the stage counters without changing any answer.
"""

from __future__ import annotations

import pytest

from repro.core import ALGORITHM_NAMES, SearchEngine
from repro.corpus import CorpusSearchEngine
from repro.datasets import PAPER_QUERIES
from repro.obs import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
    Trace,
    empty_snapshot,
    merge_snapshots,
    render_prometheus,
    render_trace,
    split_series_key,
)
from repro.obs import names as metric_names
from repro.storage import (
    SegmentedPostingSource,
    SegmentedStore,
    SQLitePostingSource,
    SQLiteStore,
)

#: The four posting backends the traced-search matrix runs over.
TRACE_BACKENDS = ("memory", "sqlite", "corpus", "segmented")


def build_engine(tree, backend: str, name: str = "doc"):
    if backend == "memory":
        return SearchEngine(tree)
    if backend == "sqlite":
        store = SQLiteStore()
        store.store_tree(tree, name)
        return SearchEngine(source=SQLitePostingSource(store, name))
    if backend == "corpus":
        return CorpusSearchEngine.from_trees({name: tree}, backend="memory")
    if backend == "segmented":
        store = SegmentedStore()
        store.store_tree(tree, name)
        store.update_document(tree, name)  # shadow: force the segment path
        return SearchEngine(source=SegmentedPostingSource(store, name))
    raise ValueError(backend)


# ---------------------------------------------------------------------- #
# Registry primitives
# ---------------------------------------------------------------------- #
def test_counter_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter(metric_names.QUERY_COUNT)
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    gauge = registry.gauge(metric_names.ADMISSION_INFLIGHT)
    gauge.set(3)
    gauge.set_max(2)        # lower: ignored
    assert gauge.value == 3
    gauge.set_max(7)
    assert gauge.value == 7


def test_unregistered_metric_name_raises():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="unregistered metric name"):
        registry.counter("free.string")
    assert "free.string" not in metric_names.CATALOGUE


def test_series_are_cached_and_label_keys_sorted():
    registry = MetricsRegistry()
    labels = {"op": "search"}
    a = registry.counter(metric_names.SERVER_REQUESTS, labels)
    b = registry.counter(metric_names.SERVER_REQUESTS, {"op": "search"})
    assert a is b
    a.inc()
    key, = registry.snapshot()["counters"]
    assert key == 'server.requests{op="search"}'
    assert split_series_key(key) == ("server.requests", 'op="search"')
    assert split_series_key("query.count") == ("query.count", "")


def test_histogram_bucketing():
    registry = MetricsRegistry()
    histogram = registry.histogram(metric_names.BATCHER_BATCH_SIZE,
                                   buckets=DEFAULT_COUNT_BUCKETS)
    # Bounds are inclusive: 1 -> first bucket, 2 -> second; 1000 overflows.
    for value in (1, 2, 2, 5, 1000):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.sum == 1010
    assert histogram.max == 1000
    series = registry.snapshot()["histograms"][metric_names.BATCHER_BATCH_SIZE]
    assert series["buckets"] == list(DEFAULT_COUNT_BUCKETS)
    # counts: per-bucket (not cumulative) + trailing overflow slot
    assert series["counts"] == [1, 2, 0, 1, 0, 0, 0, 0, 1]
    assert sum(series["counts"]) == series["count"] == 5


def test_histogram_rejects_unsorted_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="sorted"):
        registry.histogram(metric_names.QUERY_SECONDS, {"algorithm": "x"},
                           buckets=(2.0, 1.0))


# ---------------------------------------------------------------------- #
# Snapshot merge semantics
# ---------------------------------------------------------------------- #
def _worker_snapshot(queries: int, inflight: float, observations):
    registry = MetricsRegistry()
    registry.counter(metric_names.QUERY_COUNT).inc(queries)
    registry.gauge(metric_names.ADMISSION_INFLIGHT).set(inflight)
    histogram = registry.histogram(metric_names.QUERY_SECONDS)
    for value in observations:
        histogram.observe(value)
    return registry.snapshot()


def test_merge_adds_counters_and_histograms_and_maxes_gauges():
    merged = merge_snapshots([
        _worker_snapshot(3, 2.0, [0.001, 0.5]),
        _worker_snapshot(4, 5.0, [0.002]),
    ])
    assert merged["counters"][metric_names.QUERY_COUNT] == 7
    assert merged["gauges"][metric_names.ADMISSION_INFLIGHT] == 5.0
    series = merged["histograms"][metric_names.QUERY_SECONDS]
    assert series["count"] == 3
    assert series["sum"] == pytest.approx(0.503)
    assert series["max"] == 0.5
    assert sum(series["counts"]) == 3


def test_merge_of_nothing_is_empty_and_mismatched_buckets_raise():
    assert merge_snapshots([]) == empty_snapshot()
    a = MetricsRegistry()
    a.histogram(metric_names.QUERY_SECONDS).observe(0.1)
    b = MetricsRegistry()
    b.histogram(metric_names.QUERY_SECONDS,
                buckets=DEFAULT_COUNT_BUCKETS).observe(0.1)
    with pytest.raises(ValueError, match="bucket"):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_render_prometheus_shapes():
    registry = MetricsRegistry()
    registry.counter(metric_names.QUERY_COUNT,
                     {"algorithm": "validrtf"}).inc(2)
    registry.gauge(metric_names.ADMISSION_INFLIGHT).set(1)
    histogram = registry.histogram(metric_names.BATCHER_BATCH_SIZE,
                                   buckets=(1.0, 2.0))
    for value in (1, 2, 9):
        histogram.observe(value)
    text = render_prometheus(registry.snapshot())
    assert '# TYPE repro_query_count_total counter' in text
    assert 'repro_query_count_total{algorithm="validrtf"} 2' in text
    assert 'repro_admission_inflight 1' in text
    # Buckets are cumulative and capped by the +Inf bucket == count.
    assert 'repro_batcher_batch_size_bucket{le="1"} 1' in text
    assert 'repro_batcher_batch_size_bucket{le="2"} 2' in text
    assert 'repro_batcher_batch_size_bucket{le="+Inf"} 3' in text
    assert 'repro_batcher_batch_size_count 3' in text
    assert text.endswith("\n")


# ---------------------------------------------------------------------- #
# Trace spans
# ---------------------------------------------------------------------- #
def test_span_nesting_and_accounting():
    trace = Trace("query")
    with trace.span("outer", backend="memory") as outer:
        with trace.span("inner") as inner:
            inner.note(rows=3)
        trace.record("measured", outer.started, outer.started + 0.001,
                     keywords=2)
    trace.finish()
    root = trace.root
    assert [child.name for child in root.children] == ["outer"]
    assert [child.name for child in root.children[0].children] == \
        ["inner", "measured"]
    assert root.children[0].notes == {"backend": "memory"}
    assert root.children[0].children[1].notes == {"keywords": 2}
    # Children are contained in the root interval, so they can't sum past it.
    assert root.child_seconds <= root.seconds + 1e-9
    payload = trace.to_dict()
    assert payload["name"] == "query"
    assert payload["children"][0]["children"][0]["notes"] == {"rows": 3}


def test_render_trace_prints_every_span_and_self_time():
    trace = Trace("query")
    with trace.span("stage", rows=7):
        pass
    rendered = render_trace(trace)
    assert "query" in rendered and "stage" in rendered
    assert "rows=7" in rendered
    assert "unaccounted" in rendered
    assert "ms" in rendered


# ---------------------------------------------------------------------- #
# Traced search: algorithms x backends
# ---------------------------------------------------------------------- #
PIPELINE_STAGES = ("tokenize", "postings", "lca", "fragments")


def _stage_spans(trace: Trace):
    """All pipeline-stage spans, wherever they nest (corpus adds doc spans)."""
    found = []

    def walk(span):
        if span.name in PIPELINE_STAGES:
            found.append(span)
        for child in span.children:
            walk(child)

    walk(trace.root)
    return found


@pytest.mark.parametrize("backend", TRACE_BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_search_traced_covers_every_stage(publications, algorithm, backend):
    engine = build_engine(publications, backend, "publications")
    query = PAPER_QUERIES["Q2"]
    plain = engine.search(query, algorithm)
    result, trace = engine.search_traced(query, algorithm)
    # Tracing never changes the answer.
    assert [f.kept_nodes for f in result] == [f.kept_nodes for f in plain]
    spans = _stage_spans(trace)
    assert [span.name for span in spans] == list(PIPELINE_STAGES)
    # Stage intervals (plus per-document overhead) stay inside the root.
    assert trace.root.seconds > 0
    assert sum(span.seconds for span in spans) <= trace.root.seconds + 1e-9
    lca_span = spans[2]
    assert lca_span.notes["algorithm"] == algorithm
    assert lca_span.notes["candidates"] >= 1


@pytest.mark.parametrize("backend", TRACE_BACKENDS)
def test_set_metrics_fills_stage_series(publications, backend):
    engine = build_engine(publications, backend, "publications")
    registry = MetricsRegistry()
    engine.set_metrics(registry)
    for algorithm in ALGORITHM_NAMES:
        engine.search(PAPER_QUERIES["Q2"], algorithm)
    counters = registry.snapshot()["counters"]
    histograms = registry.snapshot()["histograms"]
    for algorithm in ALGORITHM_NAMES:
        key = f'query.count{{algorithm="{algorithm}"}}'
        assert counters[key] == 1
        assert histograms[f'query.seconds{{algorithm="{algorithm}"}}'][
            "count"] == 1
    assert counters[metric_names.POSTING_ROWS] > 0
    assert counters[metric_names.LCA_CANDIDATES] >= len(ALGORITHM_NAMES)
    assert histograms[metric_names.STAGE_TOKENIZE_SECONDS]["count"] == \
        len(ALGORITHM_NAMES)
    if backend == "segmented":
        # The shadowing update forces reads through the delta segment.
        assert counters[metric_names.SEGMENT_READS] > 0


def test_set_metrics_none_detaches(publications):
    engine = SearchEngine(publications)
    registry = MetricsRegistry()
    engine.set_metrics(registry)
    engine.search(PAPER_QUERIES["Q1"])
    before = registry.snapshot()
    engine.set_metrics(None)
    engine.search(PAPER_QUERIES["Q1"])
    assert registry.snapshot() == before


def test_compare_traced_nests_per_algorithm(publications):
    engine = SearchEngine(publications)
    outcome, trace = engine.compare_traced(PAPER_QUERIES["Q2"])
    names = [span.name for span in trace.root.children]
    assert names == ["validrtf", "maxmatch", "effectiveness"]
    assert outcome.report.lca_count >= 1
    rendered = render_trace(trace)
    for name in names:
        assert name in rendered


def test_corpus_trace_has_per_document_spans(publications, team):
    engine = CorpusSearchEngine.from_trees(
        {"publications": publications, "team": team}, backend="memory")
    registry = MetricsRegistry()
    engine.set_metrics(registry)
    result, trace = engine.search_traced("xml")
    doc_spans = [span for span in trace.root.children if span.name == "doc"]
    assert {span.notes["doc"] for span in doc_spans} == \
        {"publications", "team"}
    for span in doc_spans:
        assert [child.name for child in span.children] == \
            list(PIPELINE_STAGES)
    counters = registry.snapshot()["counters"]
    assert counters[metric_names.CORPUS_DOCS_SEARCHED] == 2
    assert set(result.doc_ids) <= {"publications", "team"}
