"""Regression tests for the bench-honesty guards the lint gate requires.

``write_core_bench`` and ``write_service_bench`` are the two ``BENCH_*.json``
writers; both must refuse to persist an artefact whose verification did not
run (or whose numbers are internally inconsistent).  These tests pin the
refusal paths the ``bench-honesty`` lint rule assumes exist.
"""

import json

import pytest

from repro.bench import require_verified_payload, write_core_bench
from repro.bench.core_bench import RepresentationParityError
from repro.service import (
    LoadReport,
    ServiceBenchIntegrityError,
    verify_service_reports,
    write_service_bench,
)


def good_report(**overrides):
    fields = dict(mode="closed", requests=4, concurrency=2,
                  algorithm="validrtf", elapsed_seconds=0.5,
                  latencies_ms=[1.0, 2.0, 3.0, 4.0])
    fields.update(overrides)
    return LoadReport(**fields)


class TestCoreBenchGuard:
    def test_unverified_payload_is_refused(self, tmp_path):
        target = tmp_path / "BENCH_core.json"
        with pytest.raises(RepresentationParityError):
            write_core_bench({"protocol": {"verified_parity": False}}, target)
        assert not target.exists()

    def test_missing_protocol_block_is_refused(self, tmp_path):
        with pytest.raises(RepresentationParityError):
            write_core_bench({"results": []}, tmp_path / "BENCH_core.json")

    def test_verified_payload_is_written(self, tmp_path):
        target = tmp_path / "BENCH_core.json"
        payload = {"protocol": {"verified_parity": True}, "results": []}
        require_verified_payload(payload)  # does not raise
        path = write_core_bench(payload, target)
        assert json.loads(path.read_text())["protocol"]["verified_parity"]


class TestServiceBenchGuard:
    def test_good_report_passes_and_is_written(self, tmp_path):
        report = good_report()
        verify_service_reports([report])  # does not raise
        path = write_service_bench(report, tmp_path / "BENCH_service.json")
        payload = json.loads(path.read_text())
        assert payload["service_bench"][0]["completed"] == 4

    def test_empty_report_list_is_refused(self):
        with pytest.raises(ServiceBenchIntegrityError):
            verify_service_reports([])

    def test_run_that_answered_nothing_is_refused(self, tmp_path):
        report = good_report(latencies_ms=[])
        with pytest.raises(ServiceBenchIntegrityError):
            write_service_bench(report, tmp_path / "BENCH_service.json")
        assert not (tmp_path / "BENCH_service.json").exists()

    def test_non_positive_elapsed_is_refused(self):
        with pytest.raises(ServiceBenchIntegrityError):
            verify_service_reports([good_report(elapsed_seconds=0.0)])

    def test_negative_latency_is_refused(self):
        with pytest.raises(ServiceBenchIntegrityError):
            verify_service_reports([good_report(latencies_ms=[1.0, -0.5])])

    def test_error_only_run_still_counts_as_answered(self):
        report = good_report(latencies_ms=[],
                             errors={"overloaded": 4})
        verify_service_reports([report])  # typed errors are real answers

    def test_integrity_error_is_an_assertion(self):
        # The guard doubles as a test-style assertion for harness callers.
        assert issubclass(ServiceBenchIntegrityError, AssertionError)

    def test_stats_metrics_divergence_is_refused(self):
        # The stats dict is derived from the registry, so a report whose two
        # views disagree can only mean double bookkeeping crept back in.
        report = good_report(
            server_stats={"batcher": {"requests": 5, "batches": 1,
                                      "size_flushes": 0, "timer_flushes": 1}},
            server_metrics={"counters": {"batcher.requests": 3,
                                         "batcher.batches": 1,
                                         "batcher.timer_flushes": 1},
                            "gauges": {}, "histograms": {}},
        )
        with pytest.raises(ServiceBenchIntegrityError,
                           match="batcher.requests"):
            verify_service_reports([report])

    def test_impossible_counter_and_histogram_are_refused(self):
        negative = good_report(server_metrics={
            "counters": {"batcher.requests": -1},
            "gauges": {}, "histograms": {}})
        with pytest.raises(ServiceBenchIntegrityError, match="impossible"):
            verify_service_reports([negative])
        torn = good_report(server_metrics={
            "counters": {},
            "gauges": {},
            "histograms": {"batcher.queue_wait.seconds": {
                "buckets": [1.0], "counts": [1, 0], "count": 3,
                "sum": 0.5, "max": 0.5}}})
        with pytest.raises(ServiceBenchIntegrityError, match="bucket"):
            verify_service_reports([torn])


class TestObservabilityOverheadBench:
    def test_overhead_section_shape(self):
        from repro.bench.core_bench import run_obs_overhead_bench
        from repro.bench.harness import DatasetSpec
        from repro.datasets import PAPER_QUERIES, publications_tree
        from repro.datasets.workload import WorkloadQuery

        spec = DatasetSpec(
            name="dblp",
            tree_factory=publications_tree,
            workload=(WorkloadQuery(
                label="Q2", keywords=tuple(PAPER_QUERIES["Q2"].split())),),
        )
        section = run_obs_overhead_bench(repetitions=2,
                                         specs={"dblp": spec})
        assert section["dataset"] == "dblp"
        # one entry per (query, algorithm); both sides measured
        assert len(section["entries"]) == 2
        for entry in section["entries"]:
            assert entry["plain_ms"] > 0
            assert entry["instrumented_ms"] > 0
        assert section["instrumented_over_plain"] > 0
        # the instrumented engine really recorded every run it made:
        # (1 warm-up + 2 timed passes) per (query, algorithm) pair
        assert section["queries_recorded"] == 6
