"""Unit tests for the packed columnar posting representation.

Covers the flat-column invariants, the Sequence[DeweyCode] drop-in contract,
the binary-search/galloping cursor primitives, the prefix-truncated blob codec
and the k-way merge kernels — each against a straightforward object-side
reference.  Cross-backend and cross-representation *search* parity lives in
``test_backend_parity.py`` / ``test_posting_properties.py``; this file pins
down the packed module itself.
"""

from __future__ import annotations

import random
from array import array
from bisect import bisect_left

import pytest

from repro.index.packed import (
    EMPTY_PACKED,
    PackedDeweyList,
    REPRESENTATIONS,
    all_packed,
    as_packed,
    common_prefix_len,
    iter_matches,
    merge_packed,
    pack_component_tuples,
    pack_deweys,
)
from repro.xmltree import DeweyCode


def codes(*texts):
    return [DeweyCode.parse(text) for text in texts]


def random_component_lists(rng, count, max_depth=6, max_component=7):
    out = set()
    while len(out) < count:
        depth = rng.randint(1, max_depth)
        out.add((0,) + tuple(rng.randint(0, max_component)
                             for _ in range(depth - 1)))
    return sorted(out)


# ---------------------------------------------------------------------- #
# Construction + Sequence contract
# ---------------------------------------------------------------------- #
class TestConstruction:
    def test_pack_deweys_round_trips(self):
        original = codes("0", "0.1", "0.1.2", "0.2.0.1")
        packed = pack_deweys(original, presorted=True)
        assert list(packed) == original
        assert len(packed) == 4
        assert packed  # truthy when non-empty

    def test_unsorted_input_is_sorted_and_deduplicated(self):
        packed = pack_deweys(codes("0.2", "0.1", "0.2", "0"))
        assert list(packed) == codes("0", "0.1", "0.2")

    def test_representations_constant(self):
        assert REPRESENTATIONS == ("packed", "object")

    def test_empty_packed_is_falsy_and_shared(self):
        assert len(EMPTY_PACKED) == 0
        assert not EMPTY_PACKED
        assert list(EMPTY_PACKED) == []

    def test_invalid_columns_rejected(self):
        with pytest.raises(ValueError):
            PackedDeweyList(array("H"), array("I", [0]))
        with pytest.raises(ValueError):
            PackedDeweyList(array("I", [1, 2]), array("I", [0, 1]))  # bad end

    def test_as_packed_passthrough_and_coercion(self):
        packed = pack_deweys(codes("0", "0.1"))
        assert as_packed(packed) is packed
        assert list(as_packed(["0.1", "0"])) == codes("0", "0.1")

    def test_all_packed_guard(self):
        packed = pack_deweys(codes("0"))
        assert all_packed([packed, EMPTY_PACKED]) == [packed, EMPTY_PACKED]
        assert all_packed([packed, [DeweyCode.parse("0")]]) is None


class TestSequenceProtocol:
    def test_getitem_and_negative_index(self):
        packed = pack_deweys(codes("0", "0.1", "0.2.3"))
        assert packed[0] == DeweyCode.parse("0")
        assert packed[-1] == DeweyCode.parse("0.2.3")
        with pytest.raises(IndexError):
            packed[3]

    def test_slicing_returns_packed(self):
        packed = pack_deweys(codes("0", "0.1", "0.2", "0.3"))
        window = packed[1:3]
        assert isinstance(window, PackedDeweyList)
        assert list(window) == codes("0.1", "0.2")
        assert len(packed[2:1]) == 0

    def test_stepped_slicing_degrades_to_object_form(self):
        # Reversed/strided selections violate the document-order invariant,
        # so they come back as plain tuples of codes, not packed columns.
        packed = pack_deweys(codes("0", "0.1", "0.2", "0.3"))
        assert packed[::-1] == tuple(reversed(codes("0", "0.1", "0.2", "0.3")))
        assert isinstance(packed[::2], tuple)

    def test_equality_with_object_sequences(self):
        original = codes("0", "0.1.2")
        packed = pack_deweys(original, presorted=True)
        assert packed == original            # list of DeweyCode
        assert packed == tuple(original)     # tuple of DeweyCode
        assert packed != original[:1]
        assert packed == pack_deweys(original, presorted=True)

    def test_hashable_like_the_object_representation(self):
        from repro.index import PostingList

        original = codes("0", "0.1.2")
        first = pack_deweys(original, presorted=True)
        second = pack_deweys(original, presorted=True)
        assert hash(first) == hash(second)
        assert len({first, second}) == 1
        # eq/hash contract with the tuple form __eq__ accepts: one entry.
        assert hash(first) == hash(tuple(original))
        assert len({first, tuple(original)}) == 1
        # PostingList is a frozen dataclass; it must stay hashable under the
        # default packed representation just as with tuple deweys.
        assert hash(PostingList("w", first)) == hash(PostingList("w", second))

    def test_depth_and_slice_cursors(self):
        packed = pack_deweys(codes("0", "0.1.2"))
        assert packed.depth(0) == 1 and packed.depth(1) == 3
        assert list(packed.slice(1)) == [0, 1, 2]
        assert [list(s) for s in packed.iter_slices()] == [[0], [0, 1, 2]]

    def test_materialize_is_result_boundary(self):
        original = codes("0", "0.1")
        assert pack_deweys(original).materialize() == tuple(original)


# ---------------------------------------------------------------------- #
# Binary search + galloping
# ---------------------------------------------------------------------- #
class TestSearchPrimitives:
    def test_bisect_left_matches_reference(self):
        rng = random.Random(5)
        components = random_component_lists(rng, 50)
        packed = pack_component_tuples(components, presorted=True)
        for probe in random_component_lists(rng, 25):
            assert packed.bisect_left(probe) == bisect_left(components, probe)

    def test_gallop_left_matches_reference_from_every_start(self):
        rng = random.Random(9)
        components = random_component_lists(rng, 30)
        packed = pack_component_tuples(components, presorted=True)
        for probe in random_component_lists(rng, 10):
            comps = array("I", probe)
            for start in range(len(components)):
                expected = max(start, bisect_left(components, probe))
                assert packed.gallop_left(comps, start) == expected

    def test_common_prefix_len(self):
        assert common_prefix_len((0, 1, 2), (0, 1, 5)) == 2
        assert common_prefix_len((0,), (0, 1)) == 1
        assert common_prefix_len((1,), (2,)) == 0


# ---------------------------------------------------------------------- #
# Blob codec
# ---------------------------------------------------------------------- #
class TestBlobCodec:
    def test_round_trip_random(self):
        rng = random.Random(13)
        for _ in range(25):
            components = random_component_lists(rng, rng.randint(1, 80))
            packed = pack_component_tuples(components, presorted=True)
            rebuilt = PackedDeweyList.from_blob(packed.to_blob())
            assert rebuilt == packed

    def test_round_trip_empty(self):
        assert PackedDeweyList.from_blob(EMPTY_PACKED.to_blob()) == EMPTY_PACKED

    def test_prefix_truncation_shrinks_suffix_column(self):
        # Long shared prefixes: the blob must be much smaller than raw data.
        components = [(0, 1, 2, 3, 4, 5, i) for i in range(100)]
        packed = pack_component_tuples(components, presorted=True)
        blob = packed.to_blob()
        raw_bytes = 4 * len(packed.data)
        assert len(blob) < raw_bytes

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            PackedDeweyList.from_blob(b"NOPE" + b"<" + b"\0" * 16)

    def test_truncated_blob_rejected(self):
        blob = pack_deweys(codes("0.1", "0.2")).to_blob()
        with pytest.raises(ValueError):
            PackedDeweyList.from_blob(blob[:-3])


# ---------------------------------------------------------------------- #
# Merge kernels
# ---------------------------------------------------------------------- #
class TestMergeKernels:
    def reference_masks(self, lists):
        masks = {}
        for index, components in enumerate(lists):
            for parts in components:
                masks[parts] = masks.get(parts, 0) | (1 << index)
        return sorted(masks.items())

    def test_iter_matches_masks_and_order(self):
        rng = random.Random(31)
        for _ in range(50):
            lists = [random_component_lists(rng, rng.randint(1, 40))
                     for _ in range(rng.randint(1, 5))]
            packed = [pack_component_tuples(parts, presorted=True)
                      for parts in lists]
            got = [(tuple(comps), mask) for comps, mask in iter_matches(packed)]
            assert got == self.reference_masks(lists)

    def test_iter_matches_skewed_lists_gallop(self):
        # One long run against one sparse list: the gallop path's bread and
        # butter.  Same reference semantics as the random trials.
        long = [(0, i) for i in range(500)]
        sparse = [(0, 250), (0, 900)]
        packed = [pack_component_tuples(long, presorted=True),
                  pack_component_tuples(sparse, presorted=True)]
        got = [(tuple(comps), mask) for comps, mask in iter_matches(packed)]
        assert got == self.reference_masks([long, sparse])

    def test_iter_matches_empty_inputs(self):
        assert list(iter_matches([])) == []
        assert list(iter_matches([EMPTY_PACKED, EMPTY_PACKED])) == []

    def test_merge_packed_deduplicates_across_shards(self):
        rng = random.Random(17)
        shard_lists = [random_component_lists(rng, 30) for _ in range(3)]
        merged = merge_packed([pack_component_tuples(parts, presorted=True)
                               for parts in shard_lists])
        expected = sorted({parts for shard in shard_lists for parts in shard})
        assert [code.components for code in merged] == expected


# ---------------------------------------------------------------------- #
# Engine-level representation selection
# ---------------------------------------------------------------------- #
class TestEngineRepresentation:
    def test_engine_defaults_to_packed(self, publications):
        from repro.core import SearchEngine

        engine = SearchEngine(publications)
        assert engine.representation == "packed"
        assert engine.source.representation == "packed"

    def test_engine_object_representation(self, publications):
        from repro.core import SearchEngine

        packed = SearchEngine(publications)
        boxed = SearchEngine(publications, representation="object")
        assert boxed.representation == "object"
        result_packed = packed.search("xml keyword search")
        result_boxed = boxed.search("xml keyword search")
        assert result_packed.roots() == result_boxed.roots()
        assert [f.kept_nodes for f in result_packed] == \
            [f.kept_nodes for f in result_boxed]

    def test_engine_rejects_unknown_representation(self, publications):
        from repro.core import SearchEngine

        with pytest.raises(ValueError, match="representation"):
            SearchEngine(publications, representation="columnar")

    def test_engine_rejects_contradicting_source(self, publications):
        from repro.core import SearchEngine
        from repro.index import InvertedIndex

        source = InvertedIndex(publications, representation="object")
        with pytest.raises(ValueError, match="object"):
            SearchEngine(publications, source=source, representation="packed")
        engine = SearchEngine(publications, source=source,
                              representation="object")
        assert engine.representation == "object"

    def test_posting_list_freezes_mutable_input(self, publications):
        from repro.index import PostingList

        deweys = [DeweyCode.parse("0.1"), DeweyCode.parse("0.2")]
        posting = PostingList("word", deweys)
        assert isinstance(posting.deweys, tuple)
        deweys.append(DeweyCode.parse("0.3"))
        assert len(posting) == 2  # no aliasing of the caller's list
        packed = pack_deweys(deweys)
        assert PostingList("word", packed).deweys is packed
