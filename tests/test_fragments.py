"""Tests for the fragment data model (Fragment, PrunedFragment, SearchResult)."""

from __future__ import annotations

import pytest

from repro.core import (
    Fragment,
    FragmentError,
    PrunedFragment,
    Query,
    SearchResult,
    build_fragment,
    fragments_equal,
    unpruned,
)
from repro.xmltree import DeweyCode

D = DeweyCode.parse


@pytest.fixture
def q3_fragment(publications):
    """The raw RTF of Q3 rooted at the Publications root."""
    keyword_nodes = ["0.0", "0.2.0.1", "0.2.0.2", "0.2.0.3.0", "0.2.1.1"]
    return build_fragment(publications, D("0"), keyword_nodes, is_slca=True)


class TestFragment:
    def test_build_fragment_contains_paths(self, q3_fragment):
        nodes = [str(code) for code in q3_fragment.nodes]
        assert nodes == ["0", "0.0", "0.2", "0.2.0", "0.2.0.1", "0.2.0.2",
                         "0.2.0.3", "0.2.0.3.0", "0.2.1", "0.2.1.1"]
        assert q3_fragment.size == 10
        assert q3_fragment.contains(D("0.2.0.3"))
        assert not q3_fragment.contains(D("0.1"))

    def test_keyword_nodes_sorted_unique(self, publications):
        fragment = build_fragment(publications, D("0.2.0"),
                                  ["0.2.0.2", "0.2.0.1", "0.2.0.1"])
        assert [str(code) for code in fragment.keyword_nodes] == \
            ["0.2.0.1", "0.2.0.2"]

    def test_keyword_node_outside_root_rejected(self):
        with pytest.raises(FragmentError):
            Fragment(root=D("0.1"), keyword_nodes=(D("0.2"),),
                     nodes=(D("0.1"), D("0.2")))

    def test_root_must_be_in_nodes(self):
        with pytest.raises(FragmentError):
            Fragment(root=D("0"), keyword_nodes=(), nodes=(D("0.1"),))

    def test_keyword_nodes_must_be_in_nodes(self):
        with pytest.raises(FragmentError):
            Fragment(root=D("0"), keyword_nodes=(D("0.1"),), nodes=(D("0"),))

    def test_node_sets(self, q3_fragment):
        assert D("0.2") in q3_fragment.node_set()
        assert D("0.0") in q3_fragment.keyword_node_set()


class TestPrunedFragment:
    def test_unpruned_keeps_everything(self, q3_fragment):
        pruned = unpruned(q3_fragment)
        assert pruned.size == q3_fragment.size
        assert pruned.pruned_nodes() == ()
        assert pruned.pruning_ratio() == 0.0
        assert pruned.is_slca

    def test_partial_pruning(self, q3_fragment):
        kept = tuple(code for code in q3_fragment.nodes
                     if not str(code).startswith("0.2.1"))
        pruned = PrunedFragment(fragment=q3_fragment, kept_nodes=kept,
                                algorithm="test")
        assert pruned.size == 8
        assert [str(code) for code in pruned.pruned_nodes()] == ["0.2.1", "0.2.1.1"]
        assert pruned.pruning_ratio() == pytest.approx(0.2)
        assert [str(code) for code in pruned.kept_keyword_nodes()] == \
            ["0.0", "0.2.0.1", "0.2.0.2", "0.2.0.3.0"]

    def test_kept_nodes_must_exist_in_fragment(self, q3_fragment):
        with pytest.raises(FragmentError):
            PrunedFragment(fragment=q3_fragment,
                           kept_nodes=(q3_fragment.root, D("0.9")))

    def test_root_cannot_be_pruned(self, q3_fragment):
        with pytest.raises(FragmentError):
            PrunedFragment(fragment=q3_fragment, kept_nodes=(D("0.0"),))

    def test_same_nodes_as(self, q3_fragment):
        left = unpruned(q3_fragment, "a")
        right = unpruned(q3_fragment, "b")
        assert left.same_nodes_as(right)


class TestSearchResult:
    def _result(self, publications) -> SearchResult:
        fragment_a = unpruned(build_fragment(publications, D("0.2.0"),
                                             ["0.2.0.1"]), "x")
        fragment_b = unpruned(build_fragment(publications, D("0.2.1"),
                                             ["0.2.1.1"], is_slca=False), "x")
        return SearchResult(query=Query.parse("xml"), algorithm="x",
                            fragments=(fragment_a, fragment_b))

    def test_counts_and_roots(self, publications):
        result = self._result(publications)
        assert result.count == len(result) == 2
        assert [str(code) for code in result.roots()] == ["0.2.0", "0.2.1"]
        assert set(result.by_root()) == {D("0.2.0"), D("0.2.1")}

    def test_totals_and_slca_filter(self, publications):
        result = self._result(publications)
        assert result.total_kept_nodes() == result.total_raw_nodes() == 4
        assert len(result.slca_fragments()) == 1

    def test_with_timing(self, publications):
        result = self._result(publications).with_timing(1.5)
        assert result.elapsed_seconds == 1.5
        assert result.count == 2


class TestFragmentsEqual:
    def test_equal_and_not(self, publications):
        fragment = build_fragment(publications, D("0.2.0"), ["0.2.0.1", "0.2.0.2"])
        full = unpruned(fragment, "a")
        partial = PrunedFragment(fragment=fragment,
                                 kept_nodes=(D("0.2.0"), D("0.2.0.1")),
                                 algorithm="b")
        assert fragments_equal([full], [unpruned(fragment, "c")])
        assert not fragments_equal([full], [partial])
        assert not fragments_equal([full], [])
