"""Tests for the axiomatic XKS property checkers, and the paper's claim that
ValidRTF satisfies all four properties (Section 4.3-(2))."""

from __future__ import annotations

import pytest

from repro.core import (
    MaxMatch,
    SearchEngine,
    ValidRTF,
    check_all_axioms,
    check_data_consistency,
    check_data_monotonicity,
    check_query_consistency,
    check_query_monotonicity,
)
from repro.datasets import PAPER_QUERIES, publications_tree, team_tree
from repro.xmltree import DeweyCode, SubtreeSpec

D = DeweyCode.parse


def validrtf_factory(tree):
    algorithm = ValidRTF(tree)
    return algorithm.search


def maxmatch_factory(tree):
    algorithm = MaxMatch(tree)
    return algorithm.search


NEW_ARTICLE = SubtreeSpec("article", None, children=[
    SubtreeSpec("title", "adaptive xml keyword search ranking"),
    SubtreeSpec("abstract", "ranking keyword search answers over xml data"),
])

NEW_PLAYER = SubtreeSpec("player", None, children=[
    SubtreeSpec("name", "Marc Gassol"),
    SubtreeSpec("position", "center"),
])


class TestDataMonotonicity:
    def test_insertion_adds_results(self):
        tree = publications_tree()
        check = check_data_monotonicity(validrtf_factory, tree, "xml keyword",
                                        D("0.2"), NEW_ARTICLE)
        assert check.satisfied
        assert check.after_count >= check.before_count
        # The inserted article actually contains both keywords, so it creates
        # a new result.
        assert check.after_count > check.before_count

    def test_neutral_insertion(self):
        tree = publications_tree()
        neutral = SubtreeSpec("note", "editorial comment")
        check = check_data_monotonicity(validrtf_factory, tree, "xml keyword",
                                        D("0"), neutral)
        assert check.satisfied
        assert check.after_count == check.before_count


class TestQueryMonotonicity:
    def test_adding_keyword_never_adds_results(self):
        tree = publications_tree()
        check = check_query_monotonicity(validrtf_factory, tree, "xml keyword",
                                         "skyline")
        assert check.satisfied
        assert check.after_count <= check.before_count

    def test_adding_unmatched_keyword_empties_result(self):
        tree = publications_tree()
        check = check_query_monotonicity(validrtf_factory, tree, "xml keyword",
                                         "nonexistentterm")
        assert check.satisfied
        assert check.after_count == 0


class TestDataConsistency:
    def test_new_fragments_contain_inserted_subtree(self):
        tree = publications_tree()
        check = check_data_consistency(validrtf_factory, tree, "xml keyword",
                                       D("0.2"), NEW_ARTICLE)
        assert check.satisfied

    def test_team_insertion(self):
        tree = team_tree()
        check = check_data_consistency(validrtf_factory, tree,
                                       PAPER_QUERIES["Q4"], D("0.1"), NEW_PLAYER)
        assert check.satisfied


class TestQueryConsistency:
    def test_new_fragments_match_new_keyword(self):
        tree = publications_tree()
        check = check_query_consistency(validrtf_factory, tree, "skyline",
                                        "dynamic")
        assert check.satisfied

    def test_with_maxmatch_baseline(self):
        tree = publications_tree()
        check = check_query_consistency(maxmatch_factory, tree, "xml", "keyword")
        assert check.satisfied


class TestCombinedScenarios:
    SCENARIOS = [
        ("publications", "xml keyword", "0.2", NEW_ARTICLE, "search"),
        ("publications", "liu keyword", "0.2", NEW_ARTICLE, "xml"),
        ("team", "grizzlies position", "0.1", NEW_PLAYER, "gassol"),
        ("team", "grizzlies gassol", "0.1", NEW_PLAYER, "position"),
    ]

    @pytest.mark.parametrize("tree_name,query,parent,insertion,keyword", SCENARIOS)
    def test_validrtf_satisfies_all_axioms(self, tree_name, query, parent,
                                           insertion, keyword):
        tree = publications_tree() if tree_name == "publications" else team_tree()
        report = check_all_axioms(validrtf_factory, tree, query, D(parent),
                                  insertion, keyword)
        assert report.all_satisfied, [check.detail for check in report.failed()]
        assert len(report.checks) == 4

    @pytest.mark.parametrize("tree_name,query,parent,insertion,keyword", SCENARIOS)
    def test_maxmatch_satisfies_all_axioms(self, tree_name, query, parent,
                                           insertion, keyword):
        tree = publications_tree() if tree_name == "publications" else team_tree()
        report = check_all_axioms(maxmatch_factory, tree, query, D(parent),
                                  insertion, keyword)
        assert report.all_satisfied, [check.detail for check in report.failed()]

    def test_report_failed_listing(self):
        tree = publications_tree()
        report = check_all_axioms(validrtf_factory, tree, "xml keyword",
                                  D("0.2"), NEW_ARTICLE, "search")
        assert report.failed() == []


class TestAxiomsOnRandomTrees:
    """Randomized scenarios: insert a random keyword-bearing subtree and add a
    random existing keyword; ValidRTF must satisfy all four properties."""

    @pytest.mark.parametrize("seed", range(6))
    def test_validrtf_axioms_random(self, seed, make_random_tree):
        tree = make_random_tree(seed, max_nodes=25)
        engine = SearchEngine(tree)
        vocabulary = engine.index.vocabulary()
        if len(vocabulary) < 3:
            pytest.skip("degenerate random tree without enough vocabulary")
        query = " ".join(vocabulary[:2])
        extra_keyword = vocabulary[2]
        insertion = SubtreeSpec("extra", " ".join(vocabulary[:2]))
        report = check_all_axioms(validrtf_factory, tree, query,
                                  tree.root.dewey, insertion, extra_keyword)
        assert report.all_satisfied, [check.detail for check in report.failed()]
