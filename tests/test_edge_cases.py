"""Edge-case and failure-injection tests across the stack."""

from __future__ import annotations

import pytest

from repro.core import (
    EmptyQueryError,
    MaxMatch,
    SearchEngine,
    ValidRTF,
    build_fragment,
    effectiveness,
)
from repro.index import InvertedIndex
from repro.lca import EmptyKeywordList, normalize_lists
from repro.xmltree import DeweyCode, parse_string, spec, tree_from_spec

D = DeweyCode.parse


class TestDegenerateDocuments:
    def test_single_node_document(self):
        tree = tree_from_spec(spec("note", "xml keyword search"))
        engine = SearchEngine(tree)
        result = engine.search("xml keyword")
        assert result.count == 1
        fragment = result.fragments[0]
        assert fragment.root == D("0")
        assert fragment.kept_nodes == (D("0"),)

    def test_document_where_root_is_the_only_keyword_node(self):
        tree = tree_from_spec(
            spec("report", "xml keyword",
                 spec("section", "introduction"),
                 spec("section", "conclusion")))
        result = ValidRTF(tree).search("xml keyword")
        assert [str(code) for code in result.roots()] == ["0"]
        # Children carry no keyword, so the meaningful RTF is just the root.
        assert result.fragments[0].kept_nodes == (D("0"),)

    def test_deeply_nested_chain(self):
        document = spec("a", None,
                        spec("b", None,
                             spec("c", None,
                                  spec("d", "xml keyword search"))))
        tree = tree_from_spec(document)
        result = ValidRTF(tree).search("xml search")
        assert [str(code) for code in result.roots()] == ["0.0.0.0"]

    def test_keyword_node_is_an_interesting_lca_itself(self, publications):
        # The ref node contains every keyword of this query on its own.
        result = ValidRTF(publications).search("liu xml")
        by_root = result.by_root()
        assert D("0.2.0.3.0") in by_root
        assert by_root[D("0.2.0.3.0")].kept_nodes == (D("0.2.0.3.0"),)

    def test_document_with_repeated_identical_records(self):
        children = [spec("entry", "xml keyword") for _ in range(5)]
        tree = tree_from_spec(spec("list", None, *children))
        validrtf = ValidRTF(tree).search("xml keyword")
        maxmatch = MaxMatch(tree).search("xml keyword")
        # Every entry is an interesting LCA on its own, so both algorithms
        # return five single-node fragments and nothing is deduplicated
        # across fragments.
        assert validrtf.count == maxmatch.count == 5

    def test_redundant_entries_within_one_fragment(self):
        tree = tree_from_spec(
            spec("list", None,
                 spec("marker", "alpha"),
                 spec("entry", "beta common"),
                 spec("entry", "beta common"),
                 spec("entry", "beta common")))
        validrtf = ValidRTF(tree).search("alpha beta")
        maxmatch = MaxMatch(tree).search("alpha beta")
        v_kept = validrtf.fragments[0].kept_set()
        m_kept = maxmatch.fragments[0].kept_set()
        # ValidRTF keeps a single representative entry; MaxMatch keeps all.
        assert len([c for c in v_kept if str(c).startswith("0.") and
                    tree.node(c).label == "entry"]) == 1
        assert len([c for c in m_kept if tree.node(c).label == "entry"]) == 3


class TestQueryEdgeCases:
    def test_engine_rejects_empty_query(self, publications_engine):
        with pytest.raises(EmptyQueryError):
            publications_engine.search("   ")

    def test_single_keyword_query(self, publications_engine):
        result = publications_engine.search("skyline")
        assert result.count >= 1
        for fragment in result:
            # With one keyword, every fragment is a single keyword node.
            assert fragment.fragment.root in fragment.fragment.keyword_nodes

    def test_query_with_only_unmatched_keywords(self, publications_engine):
        result = publications_engine.search("qqqq zzzz")
        assert result.count == 0

    def test_query_repeating_a_keyword_many_times(self, publications_engine):
        repeated = publications_engine.search("xml xml xml keyword")
        plain = publications_engine.search("xml keyword")
        assert repeated.roots() == plain.roots()

    def test_numeric_keyword(self, publications_engine):
        result = publications_engine.search("2008 vldb")
        assert result.count >= 1

    def test_case_and_punctuation_insensitive(self, publications_engine):
        lower = publications_engine.search("xml keyword search")
        shouty = publications_engine.search("XML, Keyword; SEARCH!")
        assert lower.roots() == shouty.roots()


class TestMetricsEdgeCases:
    def test_effectiveness_of_two_empty_results(self, publications_engine):
        empty_v = publications_engine.search("zzzz qqqq", "validrtf")
        empty_m = publications_engine.search("zzzz qqqq", "maxmatch")
        report = effectiveness(empty_m, empty_v)
        assert report.lca_count == 0
        assert report.cfr == 1.0
        assert report.max_apr == 0.0

    def test_build_fragment_with_root_as_only_keyword_node(self, publications):
        fragment = build_fragment(publications, D("0.2.0.3.0"), ["0.2.0.3.0"])
        assert fragment.nodes == (D("0.2.0.3.0"),)
        assert fragment.size == 1


class TestLcaInputValidation:
    def test_normalize_rejects_empty_query(self):
        with pytest.raises(EmptyKeywordList):
            normalize_lists({})

    def test_normalize_deduplicates_and_sorts(self):
        lists = {"w": [D("0.2"), D("0.1"), D("0.2")]}
        normalized = normalize_lists(lists)
        assert normalized == [[D("0.1"), D("0.2")]]


class TestMixedContentAndAttributes:
    def test_attribute_words_are_searchable(self):
        tree = parse_string('<catalog><item sku="XKS-2009" topic="xml keyword"/>'
                            "<item sku=\"OTHER\"/></catalog>")
        engine = SearchEngine(tree)
        result = engine.search("xml keyword")
        assert result.count == 1
        assert str(result.fragments[0].root) == "0.0"

    def test_mixed_content_text_is_searchable(self):
        tree = parse_string("<doc>xml<b>keyword</b>search</doc>")
        index = InvertedIndex(tree)
        assert index.frequency("xml") == 1
        assert index.frequency("search") == 1
        result = SearchEngine(tree).search("xml search")
        assert result.count == 1
