"""Additional harness coverage: cached engines, run_all, figure wrappers."""

from __future__ import annotations

import pytest

from repro.bench import (
    DatasetSpec,
    cached_engine,
    default_datasets,
    run_all,
    run_figure5,
    run_figure6,
)
from repro.core import SearchEngine
from repro.datasets import WorkloadQuery, publications_tree, team_tree


@pytest.fixture(scope="module")
def tiny_specs():
    return {
        "figure-1a": DatasetSpec(
            name="figure-1a", tree_factory=publications_tree,
            workload=(WorkloadQuery("lk", ("liu", "keyword")),)),
        "figure-1b": DatasetSpec(
            name="figure-1b", tree_factory=team_tree,
            workload=(WorkloadQuery("gp", ("grizzlies", "position")),)),
    }


class TestCachedEngine:
    def test_same_instance_returned(self):
        first = cached_engine("dblp", dblp_publications=40, xmark_base_items=10)
        second = cached_engine("dblp", dblp_publications=40, xmark_base_items=10)
        assert first is second
        assert isinstance(first, SearchEngine)

    def test_different_sizes_cached_separately(self):
        small = cached_engine("xmark-standard", dblp_publications=40,
                              xmark_base_items=10)
        larger = cached_engine("xmark-standard", dblp_publications=40,
                               xmark_base_items=12)
        assert small is not larger
        assert small.tree.size() < larger.tree.size()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            cached_engine("unknown", dblp_publications=40, xmark_base_items=10)


class TestRunAll:
    def test_runs_every_spec(self, tiny_specs):
        runs = run_all(tiny_specs, repetitions=1)
        assert set(runs) == set(tiny_specs)
        assert all(run.measurements for run in runs.values())

    def test_default_dataset_names(self):
        specs = default_datasets(dblp_publications=40, xmark_base_items=10)
        assert set(specs) == {"dblp", "xmark-standard", "xmark-data1",
                              "xmark-data2"}
        for name, spec in specs.items():
            assert spec.name == name
            assert callable(spec.tree_factory)


class TestFigureWrappers:
    def test_run_figure5_and_6_share_measurement_schema(self, tiny_specs):
        spec = tiny_specs["figure-1b"]
        run5 = run_figure5(spec, repetitions=1)
        run6 = run_figure6(spec)
        assert run5.dataset == run6.dataset == "figure-1b"
        assert run5.measurements[0].label == run6.measurements[0].label == "gp"
        # Figure 6 ratios are identical regardless of timing repetitions.
        assert run5.measurements[0].report.cfr == \
            run6.measurements[0].report.cfr
