"""Additional harness coverage: cached engines, run_all, figure wrappers."""

from __future__ import annotations

import pytest

from repro.bench import (
    DatasetSpec,
    cached_engine,
    default_datasets,
    run_all,
    run_figure5,
    run_figure6,
    run_workload,
    time_batch,
)
from repro.core import SearchEngine
from repro.datasets import WorkloadQuery, publications_tree, team_tree


@pytest.fixture(scope="module")
def tiny_specs():
    return {
        "figure-1a": DatasetSpec(
            name="figure-1a", tree_factory=publications_tree,
            workload=(WorkloadQuery("lk", ("liu", "keyword")),)),
        "figure-1b": DatasetSpec(
            name="figure-1b", tree_factory=team_tree,
            workload=(WorkloadQuery("gp", ("grizzlies", "position")),)),
    }


class TestCachedEngine:
    def test_same_instance_returned(self):
        first = cached_engine("dblp", dblp_publications=40, xmark_base_items=10)
        second = cached_engine("dblp", dblp_publications=40, xmark_base_items=10)
        assert first is second
        assert isinstance(first, SearchEngine)

    def test_different_sizes_cached_separately(self):
        small = cached_engine("xmark-standard", dblp_publications=40,
                              xmark_base_items=10)
        larger = cached_engine("xmark-standard", dblp_publications=40,
                               xmark_base_items=12)
        assert small is not larger
        assert small.tree.size() < larger.tree.size()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            cached_engine("unknown", dblp_publications=40, xmark_base_items=10)


class TestRunAll:
    def test_runs_every_spec(self, tiny_specs):
        runs = run_all(tiny_specs, repetitions=1)
        assert set(runs) == set(tiny_specs)
        assert all(run.measurements for run in runs.values())

    def test_default_dataset_names(self):
        specs = default_datasets(dblp_publications=40, xmark_base_items=10)
        assert set(specs) == {"dblp", "xmark-standard", "xmark-data1",
                              "xmark-data2"}
        for name, spec in specs.items():
            assert spec.name == name
            assert callable(spec.tree_factory)


class TestCacheToggle:
    def test_cached_engine_cache_size_memoized_separately(self):
        cold = cached_engine("dblp", dblp_publications=40, xmark_base_items=10)
        warm = cached_engine("dblp", dblp_publications=40, xmark_base_items=10,
                             cache_size=16)
        assert cold is not warm
        assert not cold.cache_enabled
        assert warm.cache_enabled

    def test_run_workload_cache_size(self, tiny_specs):
        spec = tiny_specs["figure-1a"]
        cold = run_workload(spec, repetitions=1)
        warm = run_workload(spec, repetitions=1, cache_size=32)
        assert [m.rtf_count for m in cold.measurements] == \
            [m.rtf_count for m in warm.measurements]
        assert [m.report.cfr for m in cold.measurements] == \
            [m.report.cfr for m in warm.measurements]

    def test_time_batch_matches_protocol(self, tiny_specs):
        spec = tiny_specs["figure-1b"]
        engine = SearchEngine(spec.tree_factory(), cache_size=8)
        texts = [query.text for query in spec.workload]
        seconds = time_batch(engine, texts, "validrtf", repetitions=2)
        assert seconds > 0
        stats = engine.cache_stats()
        assert stats.misses == len(texts)
        assert stats.hits == 2 * len(texts)  # warm-up discarded, passes hit

    def test_time_batch_rejects_non_positive_repetitions(self, tiny_specs):
        spec = tiny_specs["figure-1b"]
        engine = SearchEngine(spec.tree_factory())
        with pytest.raises(ValueError):
            time_batch(engine, ["grizzlies"], "validrtf", repetitions=0)


class TestFigureWrappers:
    def test_run_figure5_and_6_share_measurement_schema(self, tiny_specs):
        spec = tiny_specs["figure-1b"]
        run5 = run_figure5(spec, repetitions=1)
        run6 = run_figure6(spec)
        assert run5.dataset == run6.dataset == "figure-1b"
        assert run5.measurements[0].label == run6.measurements[0].label == "gp"
        # Figure 6 ratios are identical regardless of timing repetitions.
        assert run5.measurements[0].report.cfr == \
            run6.measurements[0].report.cfr
