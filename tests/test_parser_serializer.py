"""Tests for XML parsing and fragment rendering."""

from __future__ import annotations

import pytest

from repro.xmltree import (
    ParseError,
    fragment_summary,
    parse_file,
    parse_string,
    render_fragment_xml,
    render_nodes,
    render_tree,
    to_xml_string,
    write_xml_file,
)

SAMPLE = """
<library xmlns:x="http://example.org/ns">
  <book id="b1">
    <title>database systems</title>
    <author>alice</author>
  </book>
  <x:book id="b2">
    <title>xml processing</title>
  </x:book>
</library>
"""


class TestParsing:
    def test_parse_string_structure(self):
        tree = parse_string(SAMPLE, name="sample")
        assert tree.name == "sample"
        assert tree.root.label == "library"
        assert tree.size() == 6
        assert tree.node("0.0").attributes == {"id": "b1"}
        assert tree.node("0.0.0").text == "database systems"

    def test_namespace_prefix_stripped(self):
        tree = parse_string(SAMPLE)
        assert tree.node("0.1").label == "book"

    def test_malformed_document_raises(self):
        with pytest.raises(ParseError):
            parse_string("<a><b></a>")

    def test_parse_file_and_write(self, tmp_path):
        tree = parse_string(SAMPLE)
        path = tmp_path / "sample.xml"
        write_xml_file(tree, path)
        reparsed = parse_file(path)
        assert reparsed.size() == tree.size()
        assert reparsed.node("0.0.0").text == "database systems"
        assert reparsed.name == "sample"

    def test_parse_missing_file_raises(self, tmp_path):
        with pytest.raises(ParseError):
            parse_file(tmp_path / "missing.xml")

    def test_round_trip_preserves_words(self):
        tree = parse_string(SAMPLE)
        rendered = to_xml_string(tree)
        reparsed = parse_string(rendered)
        originals = sorted(node.text for node in tree.iter_leaves() if node.text)
        round_tripped = sorted(node.text for node in reparsed.iter_leaves()
                               if node.text)
        assert originals == round_tripped

    def test_mixed_content_tail_text_kept(self):
        tree = parse_string("<a>head<b>inner</b>tail</a>")
        assert "tail" in (tree.root.text or "")
        assert tree.node("0.0").text == "inner"


class TestRendering:
    def test_render_tree_contains_every_node(self):
        tree = parse_string(SAMPLE)
        output = render_tree(tree)
        assert "0.0.0 title" in output
        assert output.count("\n") == tree.size() - 1

    def test_render_nodes_highlights(self):
        tree = parse_string(SAMPLE)
        output = render_nodes(tree, ["0.0", "0.0.0"],
                              highlight=lambda node: node.label == "title")
        assert output.splitlines()[0].startswith("0.0 book")
        assert output.splitlines()[1].endswith("*")

    def test_render_nodes_empty(self):
        tree = parse_string(SAMPLE)
        assert "empty" in render_nodes(tree, [])

    def test_render_fragment_xml(self):
        tree = parse_string(SAMPLE)
        snippet = render_fragment_xml(tree, ["0.0", "0.0.0"])
        assert "<book" in snippet and "</book>" in snippet
        assert "database systems" in snippet
        assert "alice" not in snippet

    def test_fragment_summary(self):
        tree = parse_string(SAMPLE)
        summary = fragment_summary(tree, ["0.0", "0.0.0", "0.0.1"])
        assert "rooted at 0.0" in summary
        assert "3 nodes" in summary
        assert fragment_summary(tree, []) == "empty fragment"
