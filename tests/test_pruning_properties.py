"""Property-based tests of the pruning invariants on random documents.

Random labelled trees with word-bearing nodes are generated, random queries
are drawn from their vocabulary, and the end-to-end MaxMatch / ValidRTF runs
must satisfy the structural invariants the paper relies on:

* the fragment root is always kept;
* kept nodes always form a connected subtree of the raw RTF;
* pruning never loses query coverage (every keyword keeps at least one
  occurrence per fragment);
* kept node sets are subsets of the raw RTF;
* fragments of one result never overlap (the RTF partitions are disjoint);
* uniquely-labelled children are never pruned by ValidRTF (rule 1), which is
  exactly the false-positive fix.
"""

from __future__ import annotations

import random
from typing import Tuple

from hypothesis import given, settings, strategies as st

from repro.core import MaxMatch, Query, ValidRTF
from repro.index import InvertedIndex
from repro.xmltree import SubtreeSpec, XMLTree, tree_from_spec

LABELS = ("article", "title", "author", "section", "note")
WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")


@st.composite
def documents_and_queries(draw) -> Tuple[XMLTree, Query]:
    """A random document plus a random 1–3 keyword query over its vocabulary."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    node_budget = draw(st.integers(min_value=5, max_value=35))

    counter = {"left": node_budget}

    def build(depth: int) -> SubtreeSpec:
        label = rng.choice(LABELS)
        text = None
        if rng.random() < 0.7:
            text = " ".join(rng.choice(WORDS) for _ in range(rng.randint(1, 3)))
        node = SubtreeSpec(label, text)
        if depth < 4:
            for _ in range(rng.randint(0, 3)):
                if counter["left"] <= 0:
                    break
                counter["left"] -= 1
                node.add(build(depth + 1))
        return node

    tree = tree_from_spec(build(0))
    keyword_count = draw(st.integers(min_value=1, max_value=3))
    keywords = draw(st.lists(st.sampled_from(WORDS), min_size=keyword_count,
                             max_size=keyword_count, unique=True))
    return tree, Query(tuple(keywords))


SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(documents_and_queries())
def test_roots_kept_and_subsets(case):
    tree, query = case
    for algorithm_class in (ValidRTF, MaxMatch):
        result = algorithm_class(tree).search(query)
        for fragment in result:
            assert fragment.root in fragment.kept_set()
            assert fragment.kept_set() <= fragment.fragment.node_set()


@SETTINGS
@given(documents_and_queries())
def test_kept_nodes_connected(case):
    tree, query = case
    for algorithm_class in (ValidRTF, MaxMatch):
        result = algorithm_class(tree).search(query)
        for fragment in result:
            kept = fragment.kept_set()
            raw = fragment.fragment.node_set()
            for code in kept:
                if code == fragment.root:
                    continue
                parent = code.parent()
                while parent is not None and parent not in raw:
                    parent = parent.parent()
                assert parent in kept


@SETTINGS
@given(documents_and_queries())
def test_pruning_preserves_query_coverage(case):
    tree, query = case
    index = InvertedIndex(tree)
    for algorithm_class in (ValidRTF, MaxMatch):
        result = algorithm_class(tree).search(query)
        for fragment in result:
            covered = set()
            for dewey in fragment.kept_keyword_nodes():
                covered |= {keyword for keyword in query.keywords
                            if keyword in index.node_words(dewey)}
            assert covered == set(query.keywords)


@SETTINGS
@given(documents_and_queries())
def test_fragments_are_disjoint(case):
    tree, query = case
    result = ValidRTF(tree).search(query)
    seen: set = set()
    for fragment in result:
        keyword_nodes = set(fragment.fragment.keyword_nodes)
        assert not (seen & keyword_nodes)
        seen |= keyword_nodes


@SETTINGS
@given(documents_and_queries())
def test_roots_agree_between_algorithms(case):
    tree, query = case
    validrtf = ValidRTF(tree).search(query)
    maxmatch = MaxMatch(tree).search(query)
    assert validrtf.roots() == maxmatch.roots()
    assert validrtf.lca_nodes == maxmatch.lca_nodes


@SETTINGS
@given(documents_and_queries())
def test_unique_label_children_never_pruned_by_validrtf(case):
    tree, query = case
    result = ValidRTF(tree).search(query)
    for fragment in result:
        raw = fragment.fragment.node_set()
        kept = fragment.kept_set()
        # For every kept node, children (within the raw RTF) whose label is
        # unique among their raw siblings must also be kept (rule 1).
        for code in kept:
            children = [other for other in raw if other.parent() == code]
            label_counts = {}
            for child in children:
                label = tree.node(child).label
                label_counts[label] = label_counts.get(label, 0) + 1
            for child in children:
                if label_counts[tree.node(child).label] == 1:
                    assert child in kept


@SETTINGS
@given(documents_and_queries())
def test_results_deterministic(case):
    tree, query = case
    first = ValidRTF(tree).search(query)
    second = ValidRTF(tree).search(query)
    assert first.roots() == second.roots()
    assert [fragment.kept_set() for fragment in first] == \
        [fragment.kept_set() for fragment in second]
