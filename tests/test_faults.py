"""Fault injection, journal recovery and integrity verification.

Unit coverage of the robustness substrate:

* :class:`repro.faults.FaultPlan` — spec parsing, deterministic schedules,
  fault budget / warm-up delay, metrics routing, connection wrapping.
* The mutation journal of :class:`repro.storage.SegmentedStore` — a crash
  at any journaled fault point leaves a database that the next open heals
  (roll back when the apply never committed, roll forward when only the
  journal clear was lost), with keyed replays answering the original
  segment id.
* :func:`repro.storage.verify_database` — clean databases pass, and
  hand-corrupted ones surface typed findings.
* :class:`repro.service.RetryPolicy` — backoff math and validation.

The end-to-end counterparts live in ``tests/test_service_parity.py``
(degraded answers, quarantine, retrying clients) and
``tests/test_corpus_fuzz.py`` (the crash-point differential fuzzer).
"""

from __future__ import annotations

import sqlite3
from random import Random

import pytest

from repro.datasets import publications_tree, team_tree
from repro.faults import FaultPlan, InjectedCrash, InjectedFault
from repro.obs import MetricsRegistry
from repro.obs import names as metric_names
from repro.service import RetryPolicy
from repro.storage import SegmentedStore, SQLiteStore, verify_database


# ---------------------------------------------------------------------- #
# FaultPlan: parsing and validation
# ---------------------------------------------------------------------- #
class TestFaultPlanParsing:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse("seed=7, error=0.2, torn=0.1, latency=0.05, "
                               "latency-ms=3, delay=10, max-faults=5")
        assert plan.seed == 7
        assert plan.error_rate == 0.2
        assert plan.torn_rate == 0.1
        assert plan.latency_rate == 0.05
        assert plan.latency_seconds == 0.003
        assert plan.delay == 10
        assert plan.max_faults == 5

    def test_parse_empty_spec_is_a_quiet_plan(self):
        plan = FaultPlan.parse("")
        assert plan.error_rate == 0.0 and plan.max_faults is None

    @pytest.mark.parametrize("spec", ["bogus=1", "error", "error:0.5"])
    def test_parse_rejects_malformed_entries(self, spec):
        with pytest.raises(ValueError, match="bad fault-plan entry"):
            FaultPlan.parse(spec)

    def test_parse_rejects_unconvertible_values(self):
        with pytest.raises(ValueError, match="bad fault-plan value"):
            FaultPlan.parse("error=lots")

    @pytest.mark.parametrize("kwargs", [
        {"error_rate": 1.5}, {"torn_rate": -0.1}, {"latency_rate": 2.0},
        {"latency_seconds": -1.0}, {"delay": -1}, {"max_faults": -1},
    ])
    def test_constructor_validates_settings(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_describe_names_the_budget(self):
        assert "budget=unbounded" in FaultPlan().describe()
        assert "budget=3" in FaultPlan(max_faults=3).describe()


# ---------------------------------------------------------------------- #
# FaultPlan: deterministic schedules, budget, delay
# ---------------------------------------------------------------------- #
def fault_schedule(plan: FaultPlan, statements: int) -> list:
    """Which statement ordinals fault under ``plan`` (deterministically)."""
    faulted = []
    for index in range(statements):
        try:
            plan.before_statement("SELECT 1")
        except InjectedFault:
            faulted.append(index)
    return faulted


class TestFaultPlanSchedules:
    def test_same_seed_faults_the_same_statements(self):
        first = fault_schedule(FaultPlan(seed=11, error_rate=0.3), 200)
        second = fault_schedule(FaultPlan(seed=11, error_rate=0.3), 200)
        assert first and first == second

    def test_different_seeds_fault_differently(self):
        first = fault_schedule(FaultPlan(seed=1, error_rate=0.3), 200)
        second = fault_schedule(FaultPlan(seed=2, error_rate=0.3), 200)
        assert first != second

    def test_budget_bounds_total_faults(self):
        plan = FaultPlan(seed=3, error_rate=1.0, max_faults=4)
        assert fault_schedule(plan, 100) == [0, 1, 2, 3]
        assert plan.injected["error"] == 4

    def test_delay_spares_leading_statements(self):
        plan = FaultPlan(seed=3, error_rate=1.0, delay=5)
        assert fault_schedule(plan, 8) == [5, 6, 7]

    def test_injected_errors_are_operational_errors(self):
        plan = FaultPlan(error_rate=1.0)
        with pytest.raises(sqlite3.OperationalError):
            plan.before_statement("SELECT 1")

    def test_bind_routes_fault_counts_into_metrics(self):
        plan = FaultPlan(seed=5, error_rate=1.0, latency_rate=1.0,
                         latency_seconds=0.0, max_faults=6)
        metrics = MetricsRegistry()
        plan.bind(metrics)
        fault_schedule(plan, 10)
        counters = metrics.snapshot()["counters"]
        total = sum(count for name, count in counters.items()
                    if name.startswith(metric_names.FAULTS_INJECTED))
        assert total == 6 == sum(plan.injected.values())

    def test_torn_fault_commits_partial_write_at_apply_points(self):
        plan = FaultPlan(torn_rate=1.0)
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE t (x)")
        connection.commit()
        connection.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(InjectedCrash):
            plan.fault_point("update.apply", connection)
        connection.rollback()  # the crash-sim close; the tear committed
        assert connection.execute("SELECT COUNT(*) FROM t").fetchone()[0] == 1

    def test_clean_crash_at_intent_points_does_not_commit(self):
        plan = FaultPlan(torn_rate=1.0)
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE t (x)")
        connection.commit()
        connection.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(InjectedCrash):
            plan.fault_point("update.intent", connection)
        connection.rollback()
        assert connection.execute("SELECT COUNT(*) FROM t").fetchone()[0] == 0


# ---------------------------------------------------------------------- #
# The storage seam: wrapped connections and stores
# ---------------------------------------------------------------------- #
class TestFaultingConnection:
    def test_wrapped_execute_consults_the_plan(self):
        plan = FaultPlan(error_rate=1.0)
        wrapped = plan.wrap(sqlite3.connect(":memory:"))
        with pytest.raises(InjectedFault):
            wrapped.execute("SELECT 1")
        with pytest.raises(InjectedFault):
            wrapped.cursor().execute("SELECT 1")

    def test_quiet_plan_passes_statements_through(self):
        plan = FaultPlan()
        wrapped = plan.wrap(sqlite3.connect(":memory:"))
        wrapped.execute("CREATE TABLE t (x)")
        wrapped.cursor().executemany("INSERT INTO t VALUES (?)",
                                     [(1,), (2,)])
        wrapped.commit()
        assert wrapped.execute(
            "SELECT COUNT(*) FROM t").fetchone()[0] == 2

    def test_store_level_faults_surface_as_operational_errors(self, tmp_path):
        store = SQLiteStore(str(tmp_path / "faulty.db"))
        store.store_tree(publications_tree(), "publications")
        store.set_fault_plan(FaultPlan(error_rate=1.0))
        with pytest.raises(sqlite3.OperationalError):
            store.documents()
        store.close()


# ---------------------------------------------------------------------- #
# Journal recovery: every kill point heals on the next open
# ---------------------------------------------------------------------- #
def crash_at(point: str):
    """A fault hook simulating process death at one named kill point."""
    def hook(name, connection):
        if name == point:
            raise InjectedCrash(f"killed at {name}")
    return hook


def tear_at(point: str):
    """Like :func:`crash_at` but commits the partial write first."""
    def hook(name, connection):
        if name == point:
            connection.commit()
            raise InjectedCrash(f"torn at {name}")
    return hook


class TestJournalRecovery:
    @pytest.fixture
    def db(self, tmp_path):
        path = str(tmp_path / "journal.db")
        store = SegmentedStore(path)
        store.store_tree(publications_tree(), "publications")
        store.store_tree(team_tree(), "team")
        store.close()
        return path

    def crashed_update(self, db, hook):
        store = SegmentedStore(db)
        store.fault_hook = hook
        with pytest.raises(InjectedCrash):
            store.update_document(team_tree(), "team")
        store.close()

    def test_crash_at_intent_rolls_back(self, db):
        self.crashed_update(db, crash_at("update.intent"))
        store = SegmentedStore(db)
        assert store.last_recovery == {"rolled_back": 1, "rolled_forward": 0}
        assert store.documents() == ["publications", "team"]
        assert store.segment_count() == 0
        store.close()
        assert verify_database(db).clean

    def test_torn_apply_rolls_back(self, db):
        self.crashed_update(db, tear_at("update.apply"))
        store = SegmentedStore(db)
        assert store.last_recovery == {"rolled_back": 1, "rolled_forward": 0}
        assert store.segment_count() == 0
        store.close()
        assert verify_database(db).clean

    def test_crash_after_apply_rolls_forward(self, db):
        self.crashed_update(db, crash_at("update.applied"))
        store = SegmentedStore(db)
        assert store.last_recovery == {"rolled_back": 0, "rolled_forward": 1}
        assert store.segment_count() == 1
        assert store.location_of("team") == 1
        store.close()
        assert verify_database(db).clean

    def test_crash_at_delete_intent_keeps_the_document(self, db):
        store = SegmentedStore(db)
        store.fault_hook = crash_at("delete.intent")
        with pytest.raises(InjectedCrash):
            store.delete_document("team")
        store.close()
        store = SegmentedStore(db)
        assert store.last_recovery["rolled_back"] == 1
        assert store.documents() == ["publications", "team"]
        store.close()

    def test_crash_after_delete_apply_rolls_forward(self, db):
        store = SegmentedStore(db)
        store.fault_hook = crash_at("delete.applied")
        with pytest.raises(InjectedCrash):
            store.delete_document("team")
        store.close()
        store = SegmentedStore(db)
        assert store.last_recovery["rolled_forward"] == 1
        assert store.documents() == ["publications"]
        store.close()
        assert verify_database(db).clean

    def test_next_mutation_recovers_without_a_reopen(self, db):
        store = SegmentedStore(db)
        store.fault_hook = crash_at("update.intent")
        with pytest.raises(InjectedCrash):
            store.update_document(team_tree(), "team")
        # Same handle, no reopen: the next mutation heals the journal
        # before it begins (the serving stack's in-process path).
        store.fault_hook = None
        segment = store.update_document(team_tree(), "team")
        assert store.last_recovery["rolled_back"] == 1
        assert store.location_of("team") == segment
        store.close()
        assert verify_database(db).clean

    def test_keyed_replay_answers_the_original_segment(self, db):
        store = SegmentedStore(db)
        segment = store.update_document(team_tree(), "team",
                                        idempotency_key="put-7")
        assert store.replay_of("put-7") == segment
        assert store.replay_of("unknown") is None
        assert store.replay_of(None) is None
        # The replayed call applies nothing — same id, no new segment.
        again = store.update_document(team_tree(), "team",
                                      idempotency_key="put-7")
        assert again == segment
        assert store.segment_count() == 1
        store.close()

    def test_rolled_forward_keyed_mutation_is_replayable(self, db):
        store = SegmentedStore(db)
        store.fault_hook = crash_at("update.applied")
        with pytest.raises(InjectedCrash):
            store.update_document(team_tree(), "team",
                                  idempotency_key="put-9")
        store.close()
        store = SegmentedStore(db)
        assert store.last_recovery["rolled_forward"] == 1
        # Recovery flipped the keyed intent to done: a retry is a no-op.
        assert store.replay_of("put-9") == 1
        assert store.update_document(team_tree(), "team",
                                     idempotency_key="put-9") == 1
        assert store.segment_count() == 1
        store.close()


# ---------------------------------------------------------------------- #
# verify_database: clean passes, corruption surfaces typed findings
# ---------------------------------------------------------------------- #
class TestVerifyDatabase:
    @pytest.fixture
    def db(self, tmp_path):
        path = str(tmp_path / "verify.db")
        store = SegmentedStore(path)
        store.store_tree(publications_tree(), "publications")
        store.update_document(team_tree(), "team")
        store.close()
        return path

    def test_clean_database_passes(self, db):
        report = verify_database(db)
        assert report.clean
        assert report.documents == 2
        assert report.segments == 1
        assert "OK: all integrity checks passed" in report.render()
        assert report.payload()["clean"] is True

    def test_orphaned_segment_rows_are_detected(self, db):
        with sqlite3.connect(db) as connection:
            connection.execute("DELETE FROM segment")
        report = verify_database(db)
        assert not report.clean
        assert any(finding.code == "catalog-orphan-rows"
                   for finding in report.findings)
        assert "FAIL" in report.render()

    def test_posting_cardinality_mismatch_is_detected(self, db):
        with sqlite3.connect(db) as connection:
            connection.execute(
                "UPDATE posting SET cardinality = cardinality + 1")
        report = verify_database(db)
        assert any(finding.code == "posting-cardinality-mismatch"
                   for finding in report.findings)

    def test_corrupt_posting_blob_is_detected(self, db):
        with sqlite3.connect(db) as connection:
            connection.execute("UPDATE segment_posting SET blob = X'00'")
        report = verify_database(db)
        assert any(finding.code == "posting-blob-corrupt"
                   for finding in report.findings)

    def test_torn_doc_segment_is_detected(self, db):
        with sqlite3.connect(db) as connection:
            connection.execute("DELETE FROM segment_element")
        report = verify_database(db)
        assert any(finding.code == "catalog-missing-rows"
                   for finding in report.findings)

    def test_report_notes_a_recovery(self, db):
        store = SegmentedStore(db)
        store.fault_hook = crash_at("update.intent")
        with pytest.raises(InjectedCrash):
            store.update_document(team_tree(), "team")
        store.close()
        report = verify_database(db)
        assert report.clean
        assert report.recovered["rolled_back"] == 1
        assert "recovered 1 interrupted mutation(s)" in report.render()


# ---------------------------------------------------------------------- #
# RetryPolicy: backoff math
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"attempts": 0}, {"base_delay_seconds": -1.0},
        {"max_delay_seconds": -0.1}, {"jitter": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_doubles_then_caps_without_jitter(self):
        policy = RetryPolicy(base_delay_seconds=0.1, max_delay_seconds=0.5,
                             jitter=0.0)
        rng = Random(0)
        assert [policy.delay(n, rng) for n in (1, 2, 3, 4, 5)] == \
            [0.1, 0.2, pytest.approx(0.4), 0.5, 0.5]

    def test_jitter_scales_within_bounds(self):
        policy = RetryPolicy(base_delay_seconds=0.2, jitter=0.5)
        rng = Random(42)
        for retry in range(1, 6):
            raw = min(policy.max_delay_seconds,
                      policy.base_delay_seconds * (2 ** (retry - 1)))
            delay = policy.delay(retry, rng)
            assert raw * 0.5 <= delay <= raw

    def test_degraded_is_retryable_by_default(self):
        assert "degraded" in RetryPolicy().retry_codes
