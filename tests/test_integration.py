"""End-to-end integration tests across subsystems.

These exercise the full stack — dataset generator → (optionally) relational
store → inverted index → LCA computation → RTF construction → pruning →
metrics — the way the examples and benchmarks use it, on small synthetic
documents so they stay fast.
"""

from __future__ import annotations

import pytest

from repro.bench import DatasetSpec, figure6_summary, run_workload
from repro.core import SearchEngine, ValidRTF, effectiveness
from repro.datasets import PAPER_QUERIES, dblp_workload, xmark_workload
from repro.storage import MemoryStore, SQLiteStore, StoredDocumentSearch
from repro.xmltree import parse_string, to_xml_string


class TestStoreBackedSearchMatchesEngine:
    """Stage 1 via SQL must give exactly the same final fragments."""

    @pytest.mark.parametrize("backend_class", [MemoryStore, SQLiteStore])
    def test_dblp_workload_subset(self, small_dblp, backend_class):
        engine = SearchEngine(small_dblp)
        stored = StoredDocumentSearch(small_dblp, backend_class(), "dblp")
        for workload_query in dblp_workload()[:6]:
            query = workload_query.text
            for algorithm in ("validrtf", "maxmatch"):
                from_engine = engine.search(query, algorithm)
                from_store = stored.search(query, algorithm)
                assert from_engine.roots() == from_store.roots(), query
                assert [f.kept_set() for f in from_engine] == \
                    [f.kept_set() for f in from_store], query

    def test_xmark_workload_subset(self, small_xmark):
        engine = SearchEngine(small_xmark)
        stored = StoredDocumentSearch(small_xmark, SQLiteStore(), "xmark")
        for workload_query in xmark_workload()[:4]:
            from_engine = engine.search(workload_query.text, "validrtf")
            from_store = stored.search(workload_query.text, "validrtf")
            assert from_engine.roots() == from_store.roots()


class TestSerializationRoundTrip:
    """Writing a document to XML and re-parsing it preserves search results."""

    def test_figure_instance_round_trip(self, publications):
        reparsed = parse_string(to_xml_string(publications))
        original_engine = SearchEngine(publications)
        reparsed_engine = SearchEngine(reparsed)
        for query_name in ("Q1", "Q2", "Q3"):
            query = PAPER_QUERIES[query_name]
            original = original_engine.search(query, "validrtf")
            round_tripped = reparsed_engine.search(query, "validrtf")
            assert original.roots() == round_tripped.roots()
            assert [f.kept_set() for f in original] == \
                [f.kept_set() for f in round_tripped]

    def test_synthetic_round_trip(self, small_dblp):
        reparsed = parse_string(to_xml_string(small_dblp))
        assert reparsed.size() == small_dblp.size()
        original = ValidRTF(small_dblp).search("xml keyword")
        round_tripped = ValidRTF(reparsed).search("xml keyword")
        assert original.roots() == round_tripped.roots()


class TestWorkloadLevelConsistency:
    """Consistency checks across a whole (small) workload run."""

    @pytest.fixture(scope="class")
    def small_run(self, small_dblp):
        spec = DatasetSpec(name="dblp-small",
                           tree_factory=lambda: small_dblp,
                           workload=tuple(dblp_workload()[:8]))
        return run_workload(spec, repetitions=1)

    def test_summary_bounds(self, small_run):
        summary = figure6_summary(small_run)
        assert 0.0 <= summary["mean_cfr"] <= 1.0
        assert 0.0 <= summary["mean_max_apr"] <= 1.0
        assert summary["queries"] == 8

    def test_validrtf_never_slower_by_orders_of_magnitude(self, small_run):
        for measurement in small_run.measurements:
            assert measurement.validrtf_seconds < measurement.maxmatch_seconds * 20

    def test_effectiveness_recomputable_from_results(self, small_dblp, small_run):
        engine = SearchEngine(small_dblp)
        for measurement in small_run.measurements[:3]:
            validrtf = engine.search(measurement.query, "validrtf")
            maxmatch = engine.search(measurement.query, "maxmatch")
            report = effectiveness(maxmatch, validrtf)
            assert report.cfr == pytest.approx(measurement.report.cfr)
            assert report.max_apr == pytest.approx(measurement.report.max_apr)


class TestCrossAlgorithmRelationships:
    def test_slca_results_are_subset_of_elca_results(self, small_dblp):
        engine = SearchEngine(small_dblp)
        for workload_query in dblp_workload()[:6]:
            all_lca = engine.search(workload_query.text, "validrtf")
            slca_only = engine.search(workload_query.text, "validrtf-slca")
            assert set(slca_only.roots()) <= set(all_lca.roots())
            # SLCA-rooted fragments are identical under both root semantics.
            all_by_root = all_lca.by_root()
            for fragment in slca_only:
                assert fragment.kept_set() == all_by_root[fragment.root].kept_set()

    def test_explanations_consistent_with_metrics(self, small_xmark):
        engine = SearchEngine(small_xmark)
        for workload_query in xmark_workload()[:4]:
            comparison = engine.explain_comparison(workload_query.text)
            outcome = engine.compare(workload_query.text)
            extra_pruned_total = sum(c.extra_pruned
                                     for c in outcome.report.comparisons)
            assert len(comparison.redundancy_fixes()) == extra_pruned_total
