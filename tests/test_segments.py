"""SegmentedStore unit tests + the legacy row-decode fallback regression.

The segment lifecycle (delta segments, tombstones, liveness resolution,
compaction) is property-tested end to end in ``tests/test_corpus_fuzz.py``;
this module pins the store-level semantics directly — and one regression the
differential harness cannot see: a **legacy** database (indexed before the
packed ``posting`` table existed) opened segment-aware must keep answering
through the value-row decode fallback, not degrade to an empty baseline.
"""

from __future__ import annotations

import pytest

from repro.core import SearchEngine
from repro.datasets import PAPER_QUERIES, publications_tree, team_tree
from repro.storage import (
    BASE_GENERATION,
    SEGMENT_KIND_DOC,
    SEGMENT_KIND_TOMBSTONE,
    SegmentedPostingSource,
    SegmentedStore,
    SQLiteStore,
    source_for_store,
)
from repro.storage.errors import DocumentAlreadyStored, DocumentNotFound


@pytest.fixture
def store():
    segmented = SegmentedStore()
    segmented.store_tree(publications_tree(), "pub")
    segmented.store_tree(team_tree(), "team")
    yield segmented
    segmented.close()


def assert_answers_like_memory(store, document, tree, query):
    reference = SearchEngine(tree).search(query)
    candidate = SearchEngine(
        source=source_for_store(store, document)).search(query)
    assert candidate.roots() == reference.roots(), (document, query)
    assert [f.kept_nodes for f in candidate] == \
        [f.kept_nodes for f in reference], (document, query)


# ---------------------------------------------------------------------- #
# Lifecycle semantics
# ---------------------------------------------------------------------- #
def test_base_documents_live_at_generation_zero(store):
    assert store.location_of("pub") == BASE_GENERATION
    assert store.location_of("missing") is None
    assert store.documents() == ["pub", "team"]
    assert store.segment_count() == 0


def test_update_shadows_base_with_a_delta_segment(store):
    first = store.update_document(team_tree(), "team")
    assert first == 1 and store.location_of("team") == 1
    second = store.update_document(team_tree(), "team")
    assert second == 2, "segment ids are monotonically increasing"
    assert store.location_of("team") == 2, "the highest event wins"
    assert store.location_of("pub") == BASE_GENERATION
    assert store.documents() == ["pub", "team"]
    events = store.segment_events()
    assert events == [(1, "team", SEGMENT_KIND_DOC),
                      (2, "team", SEGMENT_KIND_DOC)]


def test_update_can_add_a_brand_new_document(store):
    segment = store.update_document(publications_tree(), "extra")
    assert store.location_of("extra") == segment
    assert store.documents() == ["extra", "pub", "team"]
    assert_answers_like_memory(store, "extra", publications_tree(),
                               PAPER_QUERIES["Q1"])


def test_delete_is_a_tombstone_not_a_purge(store):
    segment = store.delete_document("team")
    assert store.location_of("team") is None
    assert store.documents() == ["pub"]
    assert store.tombstoned_documents() == ["team"]
    assert (segment, "team", SEGMENT_KIND_TOMBSTONE) in store.segment_events()
    with pytest.raises(DocumentNotFound):
        store.delete_document("team")


def test_store_over_live_document_is_refused(store):
    with pytest.raises(DocumentAlreadyStored):
        store.store_tree(team_tree(), "team")
    store.update_document(team_tree(), "team")
    with pytest.raises(DocumentAlreadyStored):
        store.store_tree(team_tree(), "team")


def test_readd_after_delete_behaves_like_fresh(store):
    store.update_document(team_tree(), "team")
    store.delete_document("team")
    store.store_tree(team_tree(), "team")
    assert store.location_of("team") == BASE_GENERATION
    assert store.tombstoned_documents() == []
    assert_answers_like_memory(store, "team", team_tree(),
                               PAPER_QUERIES["Q4"])


def test_compact_folds_segments_into_base(store):
    store.update_document(team_tree(), "team")
    store.delete_document("pub")
    outcome = store.compact()
    assert outcome == {"folded": 1, "dropped": 1, "segments": 2}
    assert store.segment_count() == 0 and store.segment_events() == []
    assert store.documents() == ["team"]
    assert store.location_of("team") == BASE_GENERATION
    assert_answers_like_memory(store, "team", team_tree(),
                               PAPER_QUERIES["Q4"])
    # Compacting an already-flat store is a no-op.
    assert store.compact() == {"folded": 0, "dropped": 0, "segments": 0}


def test_segmented_source_id_carries_the_generation(store):
    base = SegmentedPostingSource(store, "team")
    assert base.source_id.endswith("#team@g0")
    store.update_document(team_tree(), "team")
    shadowed = SegmentedPostingSource(store, "team")
    assert shadowed.source_id.endswith("#team@g1")
    # A source pins its snapshot at first resolution: the pre-update source
    # keeps its identity (engine rebuilds pick up the new generation).
    assert base.source_id.endswith("#team@g0")


def test_plain_sqlite_store_still_opens_segmented_databases(tmp_path):
    """The segment tables are additive: a plain SQLiteStore sees the base
    generation of the same file (old readers never break)."""
    db = str(tmp_path / "shared.db")
    segmented = SegmentedStore(db)
    segmented.store_tree(publications_tree(), "pub")
    segmented.update_document(team_tree(), "team")
    segmented.close()
    plain = SQLiteStore(db)
    assert plain.documents() == ["pub"]  # segment-resident docs invisible
    plain.close()


# ---------------------------------------------------------------------- #
# The legacy fallback regression
# ---------------------------------------------------------------------- #
def test_legacy_database_survives_segmented_updates(tmp_path):
    """A pre-``posting``-table database opened with updates keeps answering.

    Regression: segmented reads route packed-blob lookups per document, and
    a bug that consulted only the segment tables would serve legacy base
    documents an **empty** posting baseline instead of the value-row decode
    fallback.
    """
    db = str(tmp_path / "legacy.db")
    old = SQLiteStore(db)
    old.store_tree(publications_tree(), "pub")
    old.store_tree(team_tree(), "team")
    # Simulate a database from before the packed posting table existed.
    connection = old._connection
    connection.execute("DELETE FROM posting")
    connection.commit()
    assert not old.has_packed_postings("pub")
    old.close()

    store = SegmentedStore(db)
    segment = store.update_document(team_tree(), "team")
    assert segment == 1
    # The legacy base document still answers through the row-decode
    # fallback (non-empty!), the updated one through its segment blobs.
    assert not store.has_packed_postings("pub")
    assert store.has_packed_postings("team")
    assert_answers_like_memory(store, "pub", publications_tree(),
                               PAPER_QUERIES["Q1"])
    assert_answers_like_memory(store, "team", team_tree(),
                               PAPER_QUERIES["Q4"])
    reference = SearchEngine(publications_tree()).search(PAPER_QUERIES["Q1"])
    assert reference.count > 0, "the regression query must be non-trivial"
    store.close()
