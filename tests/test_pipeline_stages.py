"""Unit tests for the shared four-stage pipeline object itself."""

from __future__ import annotations

import pytest

from repro.core import Query
from repro.core.pipeline import FragmentPipeline, elca_roots, slca_roots
from repro.core.valid_contributor import prune_with_valid_contributor
from repro.datasets import PAPER_QUERIES
from repro.index import InvertedIndex
from repro.lca import indexed_lookup_eager_slca, indexed_stack_elca
from repro.xmltree import DeweyCode

D = DeweyCode.parse


@pytest.fixture
def pipeline(publications):
    return FragmentPipeline(
        publications,
        pruner=lambda records: prune_with_valid_contributor(records, "custom"),
        name="custom-pipeline",
    )


class TestStageHelpers:
    def test_keyword_nodes_stage(self, pipeline):
        lists = pipeline.keyword_nodes("Liu keyword")
        assert set(lists) == {"liu", "keyword"}
        assert [str(code) for code in lists["liu"]] == \
            ["0.2.0.0.0.0", "0.2.0.3.0"]

    def test_lca_nodes_stage_uses_configured_semantics(self, publications):
        elca_pipeline = FragmentPipeline(
            publications, pruner=prune_with_valid_contributor,
            lca_function=elca_roots)
        slca_pipeline = FragmentPipeline(
            publications, pruner=prune_with_valid_contributor,
            lca_function=slca_roots)
        lists = InvertedIndex(publications).keyword_nodes(
            Query.parse("Liu keyword").keywords)
        assert elca_pipeline.lca_nodes("Liu keyword") == indexed_stack_elca(lists)
        assert slca_pipeline.lca_nodes("Liu keyword") == \
            indexed_lookup_eager_slca(lists)

    def test_raw_fragments_stage(self, pipeline):
        fragments = pipeline.raw_fragments(PAPER_QUERIES["Q2"])
        assert [str(fragment.root) for fragment in fragments] == \
            ["0.2.0", "0.2.0.3.0"]
        assert fragments[0].keyword_nodes

    def test_raw_fragments_empty_when_keyword_missing(self, pipeline):
        assert pipeline.raw_fragments("xml absentkeyword") == []

    def test_record_tree_stage(self, pipeline):
        fragments = pipeline.raw_fragments(PAPER_QUERIES["Q2"])
        records = pipeline.record_tree(PAPER_QUERIES["Q2"], fragments[0])
        assert records.root.dewey == fragments[0].root
        assert records.size() == fragments[0].size


class TestSearchBehaviour:
    def test_search_uses_custom_pruner_name(self, pipeline):
        result = pipeline.search(PAPER_QUERIES["Q2"])
        assert result.algorithm == "custom-pipeline"
        assert all(fragment.algorithm == "custom" for fragment in result)

    def test_search_records_lca_nodes(self, pipeline):
        result = pipeline.search(PAPER_QUERIES["Q2"])
        assert [str(code) for code in result.lca_nodes] == ["0.2.0", "0.2.0.3.0"]

    def test_search_accepts_query_objects_and_lists(self, pipeline):
        from_string = pipeline.search("liu keyword")
        from_list = pipeline.search(["liu", "keyword"])
        from_query = pipeline.search(Query.parse("liu keyword"))
        assert from_string.roots() == from_list.roots() == from_query.roots()

    def test_index_built_on_demand(self, publications):
        pipeline = FragmentPipeline(publications,
                                    pruner=prune_with_valid_contributor)
        assert pipeline.index is not None
        assert pipeline.analyzer is pipeline.index.analyzer

    def test_shared_index_instance(self, publications):
        index = InvertedIndex(publications)
        pipeline = FragmentPipeline(publications, index=index,
                                    pruner=prune_with_valid_contributor)
        assert pipeline.index is index

    def test_cid_mode_forwarded_to_records(self, publications):
        pipeline = FragmentPipeline(publications,
                                    pruner=prune_with_valid_contributor,
                                    cid_mode="exact")
        fragments = pipeline.raw_fragments(PAPER_QUERIES["Q2"])
        records = pipeline.record_tree(PAPER_QUERIES["Q2"], fragments[0])
        assert isinstance(records.root.content_feature, frozenset)
