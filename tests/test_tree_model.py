"""Tests for the node/tree model, the builder and tree mutation helpers."""

from __future__ import annotations

import pytest

from repro.xmltree import (
    DeweyCode,
    DuplicateNode,
    NodeNotFound,
    SubtreeSpec,
    TreeBuilder,
    XMLNode,
    XMLTree,
    XMLTreeError,
    spec,
    tree_from_spec,
)


@pytest.fixture
def library_tree() -> XMLTree:
    document = spec(
        "library", None,
        spec("book", None,
             spec("title", "database systems"),
             spec("author", "alice")),
        spec("book", None,
             spec("title", "xml processing"),
             spec("author", "bob")),
    )
    return tree_from_spec(document, name="library")


class TestNode:
    def test_structure_accessors(self, library_tree):
        root = library_tree.root
        assert root.is_root and not root.is_leaf
        assert root.child_count() == 2
        first_book = root.children[0]
        assert first_book.parent is root
        assert first_book.depth == 1
        title = first_book.children[0]
        assert title.is_leaf
        assert title.text == "database systems"

    def test_iteration_orders(self, library_tree):
        labels = [node.label for node in library_tree.root.iter_subtree()]
        assert labels == ["library", "book", "title", "author", "book", "title",
                          "author"]
        descendants = list(library_tree.root.iter_descendants())
        assert len(descendants) == library_tree.size() - 1

    def test_iter_ancestors(self, library_tree):
        title = library_tree.node("0.1.0")
        chain = [node.label for node in title.iter_ancestors()]
        assert chain == ["book", "library"]
        chain_self = [node.label for node in title.iter_ancestors(include_self=True)]
        assert chain_self == ["title", "book", "library"]

    def test_find_children(self, library_tree):
        books = library_tree.root.find_children("book")
        assert len(books) == 2
        assert library_tree.root.find_children("missing") == []

    def test_raw_strings_include_label_text_attributes(self):
        node = XMLNode(DeweyCode.root(), "item", "antique vase",
                       {"id": "item1", "featured": ""})
        strings = node.raw_strings()
        assert "item" in strings
        assert "antique vase" in strings
        assert "id" in strings and "item1" in strings
        assert "featured" in strings

    def test_equality_and_hash(self, library_tree):
        node = library_tree.node("0.0.0")
        twin = XMLNode(DeweyCode.parse("0.0.0"), "title")
        assert node == twin
        assert hash(node) == hash(twin)


class TestTree:
    def test_lookup(self, library_tree):
        assert library_tree.node("0.1.0").text == "xml processing"
        assert library_tree.get("0.9") is None
        with pytest.raises(NodeNotFound):
            library_tree.node("0.9")
        assert "0.1" in library_tree
        assert "0.9" not in library_tree

    def test_sizes_and_labels(self, library_tree):
        assert library_tree.size() == 7
        assert len(library_tree) == 7
        assert library_tree.max_depth() == 2
        assert library_tree.labels() == ["author", "book", "library", "title"]
        histogram = library_tree.label_histogram()
        assert histogram["book"] == 2
        assert histogram["library"] == 1

    def test_lca_and_paths(self, library_tree):
        lca = library_tree.lca(["0.0.0", "0.1.1"])
        assert lca.dewey == DeweyCode.root()
        path = library_tree.path_nodes("0", "0.1.0")
        assert [str(node.dewey) for node in path] == ["0", "0.1", "0.1.0"]
        with pytest.raises(ValueError):
            library_tree.path_nodes("0.1", "0.0.0")

    def test_fragment_nodes_union_of_paths(self, library_tree):
        fragment = library_tree.fragment_nodes("0", ["0.0.0", "0.1.1"])
        assert [str(node.dewey) for node in fragment] == \
            ["0", "0.0", "0.0.0", "0.1", "0.1.1"]

    def test_duplicate_dewey_rejected(self):
        root = XMLNode(DeweyCode.root(), "a")
        child = XMLNode(DeweyCode.root(), "b")
        root.attach_child(child)
        with pytest.raises(DuplicateNode):
            XMLTree(root)

    def test_iter_leaves(self, library_tree):
        leaves = [node.label for node in library_tree.iter_leaves()]
        assert leaves == ["title", "author", "title", "author"]


class TestTreeMutation:
    def test_copy_is_deep(self, library_tree):
        clone = library_tree.copy()
        assert clone.size() == library_tree.size()
        assert clone.node("0.0.0") is not library_tree.node("0.0.0")
        assert clone.node("0.0.0").text == library_tree.node("0.0.0").text

    def test_with_inserted_subtree(self, library_tree):
        insertion = SubtreeSpec("book", None, children=[
            SubtreeSpec("title", "graph databases"),
        ])
        grown = library_tree.with_inserted_subtree("0", insertion)
        assert grown.size() == library_tree.size() + 2
        assert grown.node("0.2").label == "book"
        assert grown.node("0.2.0").text == "graph databases"
        # The original tree is untouched.
        assert library_tree.get("0.2") is None

    def test_subtree_spec_node_count(self):
        insertion = SubtreeSpec("a", children=[SubtreeSpec("b"), SubtreeSpec("c")])
        assert insertion.node_count() == 3


class TestBuilder:
    def test_builds_document_order_deweys(self):
        builder = TreeBuilder("root")
        builder.element("child")
        builder.text_element("leaf", "one")
        builder.text_element("leaf", "two")
        builder.up()
        builder.text_element("other", "three")
        tree = builder.build()
        assert [str(node.dewey) for node in tree.iter_preorder()] == \
            ["0", "0.0", "0.0.0", "0.0.1", "0.1"]
        assert tree.node("0.0.1").text == "two"

    def test_up_validation(self):
        builder = TreeBuilder("root")
        with pytest.raises(XMLTreeError):
            builder.up()
        builder.element("child")
        with pytest.raises(XMLTreeError):
            builder.up(5)

    def test_builder_single_use(self):
        builder = TreeBuilder("root")
        builder.build()
        with pytest.raises(XMLTreeError):
            builder.element("child")
        with pytest.raises(XMLTreeError):
            builder.build()

    def test_current_and_depth(self):
        builder = TreeBuilder("root")
        assert builder.depth == 1
        builder.element("child")
        assert builder.current.label == "child"
        assert builder.depth == 2
