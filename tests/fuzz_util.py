"""Shared helpers of the differential corpus fuzz harness.

The corpus correctness contract is *differential*: for any corpus, any
backend, any representation and any algorithm, the corpus answer must equal
the **union of the per-document single-document answers** computed by the
plain in-memory :class:`~repro.core.engine.SearchEngine` (the most-tested
reference path in the repo).  These helpers generate seeded random corpora
and queries, build corpus engines across the backend matrix and perform the
full-fidelity comparison.

A second, *mutation-sequence* contract rides on top of it: a segmented
corpus that absorbed any seeded sequence of add / update / delete / compact
mutations must answer byte-identically (canonical wire payloads) to a corpus
re-shredded from scratch out of the same live documents — see
:func:`run_mutation_sequence` and :func:`assert_segmented_matches_fresh`.

Used by the fast bounded tier-1 suite (``tests/test_corpus_fuzz.py``) and
the deep opt-in sweep (``benchmarks/test_corpus_fuzz.py``); kept
self-contained (no conftest imports) so both suites can load it.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.core import ALGORITHM_NAMES, SearchEngine
from repro.corpus import CorpusSearchEngine, corpus_from_store
from repro.service.protocol import (
    comparison_payload,
    encode_message,
    ranking_payload,
    result_payload,
)
from repro.storage import SegmentedStore
from repro.xmltree import SubtreeSpec, XMLTree, tree_from_spec

#: Small label/word pools keep keyword collisions (and therefore non-trivial
#: posting lists spanning several documents) frequent.
LABEL_POOL = ("a", "b", "c", "d", "e")
WORD_POOL = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta")


def random_document(seed: int, max_children: int = 3, max_depth: int = 4,
                    max_nodes: int = 40) -> XMLTree:
    """One deterministic random labelled tree with word-bearing nodes."""
    rng = random.Random(seed)
    counter = {"nodes": 1}

    def make(depth: int) -> SubtreeSpec:
        label = rng.choice(LABEL_POOL)
        text = None
        if rng.random() < 0.6:
            text = " ".join(rng.choice(WORD_POOL)
                            for _ in range(rng.randint(1, 3)))
        node = SubtreeSpec(label, text)
        if depth < max_depth and counter["nodes"] < max_nodes:
            for _ in range(rng.randint(0, max_children)):
                if counter["nodes"] >= max_nodes:
                    break
                counter["nodes"] += 1
                node.add(make(depth + 1))
        return node

    return tree_from_spec(make(0), name=f"fuzz-{seed}")


def random_corpus(seed: int, min_docs: int = 2, max_docs: int = 8,
                  max_nodes: int = 40) -> Dict[str, XMLTree]:
    """A seeded random corpus of ``min_docs``–``max_docs`` documents."""
    rng = random.Random(seed * 7919 + 13)
    count = rng.randint(min_docs, max_docs)
    return {f"doc-{index:02d}": random_document(seed * 101 + index,
                                                max_nodes=max_nodes)
            for index in range(count)}


def random_queries(seed: int, count: int = 4,
                   max_keywords: int = 3) -> List[str]:
    """Seeded keyword queries over the shared word pool."""
    rng = random.Random(seed * 31 + count)
    queries = []
    for _ in range(count):
        size = rng.randint(1, max_keywords)
        queries.append(" ".join(rng.sample(WORD_POOL, size)))
    return queries


def build_corpus_engine(trees: Dict[str, XMLTree], backend: str,
                        representation: str,
                        shard_count: int = 2) -> CorpusSearchEngine:
    """A corpus engine over ``trees`` for one (backend, representation)."""
    return CorpusSearchEngine.from_trees(trees, backend=backend,
                                         representation=representation,
                                         shard_count=shard_count)


def reference_engines(trees: Dict[str, XMLTree]) -> Dict[str, SearchEngine]:
    """One plain memory engine per document — the differential reference."""
    return {doc_id: SearchEngine(tree) for doc_id, tree in trees.items()}


def result_fingerprint(result) -> tuple:
    """Everything of a SearchResult the union contract covers (no timings)."""
    return (
        tuple(str(code) for code in result.lca_nodes),
        tuple((str(fragment.root), fragment.is_slca,
               tuple(str(code) for code in fragment.kept_nodes),
               tuple(str(code) for code in fragment.fragment.nodes),
               tuple(str(code) for code in fragment.fragment.keyword_nodes))
              for fragment in result.fragments),
    )


def assert_corpus_equals_union(corpus_result, references, query: str,
                               algorithm: str, context=()) -> None:
    """The differential check: corpus answer == per-document union."""
    expected = {}
    for doc_id, engine in references.items():
        result = engine.search(query, algorithm)
        if result.count or result.lca_nodes:
            expected[doc_id] = result
    got = corpus_result.by_doc()
    assert set(got) == set(expected), (
        "corpus answered documents differ from the per-document union",
        sorted(got), sorted(expected), query, algorithm, *context)
    for doc_id, reference in expected.items():
        assert result_fingerprint(got[doc_id]) == \
            result_fingerprint(reference), (
            "corpus document result differs from its single-document engine",
            doc_id, query, algorithm, *context)
    # The aggregate accessors must agree with the per-document concatenation
    # in corpus (sorted doc-id) order.
    flat = [fragment for doc_id in sorted(expected)
            for fragment in expected[doc_id].fragments]
    assert list(corpus_result.fragments) == flat, (query, algorithm, *context)


# ---------------------------------------------------------------------- #
# Mutation-sequence fuzz (segmented incremental updates)
# ---------------------------------------------------------------------- #
# The update-oracle convention: a corpus that absorbed ANY sequence of
# add / update / delete / compact mutations must answer **byte-identically**
# (canonical wire payloads of search, compare and rank) to a corpus
# re-shredded from scratch out of the same live documents.  The driver below
# mirrors every mutation it applies to a ``SegmentedStore`` into a plain
# ``{doc_id: tree}`` dict — that dict *is* the oracle state, and a fresh
# in-memory corpus engine built from it is the reference answer.

def wire_lines(engine: CorpusSearchEngine,
               queries: List[str]) -> List[bytes]:
    """Canonical wire bytes of every (query × algorithm) search plus the
    compare and rank answers — the byte-identity fingerprint of an engine."""
    lines = [
        encode_message({"query": query, "algorithm": algorithm,
                        "result": result_payload(
                            engine.search(query, algorithm))})
        for query in queries for algorithm in ALGORITHM_NAMES
    ]
    for query in queries:
        lines.append(encode_message(
            {"query": query,
             "comparison": comparison_payload(engine.compare(query))}))
        lines.append(encode_message(
            {"query": query,
             "ranking": ranking_payload(engine.search_ranked(query))}))
    return lines


def segmented_engine(store: SegmentedStore, state: Dict[str, XMLTree],
                     representation: str) -> CorpusSearchEngine:
    """A corpus engine over the segmented store's current live documents.

    ``state`` supplies the resident trees ranking needs; its keys must be
    exactly the store's live document set.
    """
    source = corpus_from_store(store, representation=representation)
    return CorpusSearchEngine(source, trees=state)


def fresh_oracle(state: Dict[str, XMLTree],
                 representation: str) -> CorpusSearchEngine:
    """The update oracle: the live state re-shredded from scratch."""
    return CorpusSearchEngine.from_trees(state, backend="memory",
                                         representation=representation)


def assert_segmented_matches_fresh(store: SegmentedStore,
                                   state: Dict[str, XMLTree],
                                   queries: List[str], representation: str,
                                   context=()) -> None:
    """Byte-identity of the mutated store against the fresh-rebuild oracle."""
    got = wire_lines(segmented_engine(store, state, representation), queries)
    want = wire_lines(fresh_oracle(state, representation), queries)
    assert got == want, (
        "mutated segmented corpus diverged from a fresh rebuild", *context)


def run_mutation_sequence(store: SegmentedStore, state: Dict[str, XMLTree],
                          seed: int, steps: int,
                          check: Callable[[str], None],
                          max_nodes: int = 25) -> List[str]:
    """Drive ``steps`` seeded random mutations through ``store``.

    Every mutation is mirrored into ``state`` (the oracle dict) and
    ``check(label)`` runs after each commit, so **every intermediate state**
    is verified, not just the final one.  Kinds: ``add`` a brand-new
    document, ``update`` (shadow) an existing one, ``delete`` (tombstone)
    one — only while more than one is live, the engines refuse empty
    corpora — and ``compact`` the segment log.  Returns the step labels.
    """
    rng = random.Random(seed * 7907 + 23)
    counter = len(state)
    labels = []
    for index in range(steps):
        kinds = ["add", "update", "compact"]
        if len(state) > 1:
            kinds.append("delete")
        kind = rng.choice(kinds)
        if kind == "add":
            name = f"doc-{counter:02d}"
            counter += 1
            tree = random_document(rng.randrange(1, 1 << 20),
                                   max_nodes=max_nodes)
            store.update_document(tree, name)
            state[name] = tree
        elif kind == "update":
            name = rng.choice(sorted(state))
            tree = random_document(rng.randrange(1, 1 << 20),
                                   max_nodes=max_nodes)
            store.update_document(tree, name)
            state[name] = tree
        elif kind == "delete":
            name = rng.choice(sorted(state))
            store.delete_document(name)
            del state[name]
        else:
            store.compact()
        label = f"step {index}: {kind}"
        labels.append(label)
        check(label)
    return labels
