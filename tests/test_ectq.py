"""Tests for the ECTQ / RTF executable specification (Definitions 1 and 2).

These replay the paper's Examples 3 and 4 and check that the exponential
specification agrees with the efficient pipeline (ELCA roots + getRTF) on the
figure instances and on small random inputs.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Query,
    assign_keyword_nodes,
    enumerate_ectq,
    enumerate_rtfs,
    is_rtf_combination,
    rtf_roots,
)
from repro.index import InvertedIndex
from repro.lca import indexed_stack_elca
from repro.xmltree import DeweyCode

D = DeweyCode.parse


@pytest.fixture(scope="module")
def liu_keyword_lists(publications):
    """The D_i lists of Example 3: Q = "Liu keyword" on Figure 1(a)."""
    index = InvertedIndex(publications)
    return index.keyword_nodes(Query.parse("Liu keyword").keywords)


class TestExample3:
    def test_posting_lists_match_paper(self, liu_keyword_lists):
        assert [str(code) for code in liu_keyword_lists["liu"]] == \
            ["0.2.0.0.0.0", "0.2.0.3.0"]
        assert [str(code) for code in liu_keyword_lists["keyword"]] == \
            ["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]

    def test_ectq_has_eleven_distinct_combinations(self, liu_keyword_lists):
        # |ECTQ| = 11, not (2^2-1)(2^3-1) = 21, because the ref node carries
        # both keywords (Example 3).
        combinations = enumerate_ectq(liu_keyword_lists)
        assert len(combinations) == 11

    def test_every_combination_covers_the_query(self, liu_keyword_lists):
        for combination in enumerate_ectq(liu_keyword_lists):
            assert any(code in liu_keyword_lists["liu"] for code in combination)
            assert any(code in liu_keyword_lists["keyword"] for code in combination)

    def test_enumeration_guard(self, liu_keyword_lists):
        with pytest.raises(ValueError):
            enumerate_ectq(liu_keyword_lists, max_combinations=3)


class TestExample4:
    def test_exactly_two_rtfs(self, liu_keyword_lists):
        rtfs = enumerate_rtfs(liu_keyword_lists)
        as_strings = [sorted(str(code) for code in nodes) for nodes in rtfs]
        assert as_strings == [
            ["0.2.0.3.0"],
            ["0.2.0.0.0.0", "0.2.0.1", "0.2.0.2"],
        ]

    def test_rtf_roots_match_paper(self, liu_keyword_lists):
        roots = rtf_roots(enumerate_rtfs(liu_keyword_lists))
        assert [str(code) for code in roots] == ["0.2.0", "0.2.0.3.0"]

    def test_rejected_combinations(self, liu_keyword_lists):
        ref = D("0.2.0.3.0")
        name = D("0.2.0.0.0.0")
        title = D("0.2.0.1")
        abstract = D("0.2.0.2")
        # {n, r} conflicts with conditions 1 and 3 (Example 4).
        assert not is_rtf_combination(frozenset({name, ref}), liu_keyword_lists)
        # {n, t} and {n, a} are not maximal (condition 2).
        assert not is_rtf_combination(frozenset({name, title}), liu_keyword_lists)
        assert not is_rtf_combination(frozenset({name, abstract}), liu_keyword_lists)
        # The two real RTFs are accepted.
        assert is_rtf_combination(frozenset({ref}), liu_keyword_lists)
        assert is_rtf_combination(frozenset({name, title, abstract}),
                                  liu_keyword_lists)


class TestAgreementWithPipeline:
    def test_specification_matches_getrtf_on_figure(self, liu_keyword_lists):
        spec_rtfs = {frozenset(nodes) for nodes in enumerate_rtfs(liu_keyword_lists)}
        roots = indexed_stack_elca(liu_keyword_lists)
        assignment = assign_keyword_nodes(roots, liu_keyword_lists)
        pipeline_rtfs = {frozenset(nodes) for nodes in assignment.values() if nodes}
        assert spec_rtfs == pipeline_rtfs

    @pytest.mark.parametrize("seed", range(8))
    def test_specification_matches_getrtf_on_random_inputs(
            self, seed, make_random_tree, make_random_keyword_lists):
        tree = make_random_tree(seed, max_nodes=20)
        lists = make_random_keyword_lists(tree, seed, keyword_count=2)
        # Keep the enumeration tractable.
        lists = {keyword: deweys[:4] for keyword, deweys in lists.items()}
        spec_rtfs = {frozenset(nodes) for nodes in enumerate_rtfs(lists)}
        roots = indexed_stack_elca(lists)
        assignment = assign_keyword_nodes(roots, lists)
        pipeline_rtfs = {frozenset(nodes) for nodes in assignment.values() if nodes}
        assert spec_rtfs == pipeline_rtfs

    def test_empty_posting_list(self):
        assert enumerate_ectq({"w1": []}) == []
        assert enumerate_rtfs({"w1": []}) == []
