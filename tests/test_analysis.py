"""The static-analysis gate: per-rule fixtures, pragmas, and the real tree.

Every rule is exercised three ways — a failing fixture, a passing fixture,
and a pragma-suppressed fixture — on throwaway mini-projects under
``tmp_path``, so the rule logic is pinned independently of the repo's own
code.  The acceptance checks then run the rules against the *real* tree:
the tree itself must be clean, and the two canonical regressions (deleting
a ``BACKENDS`` entry, adding a boxed ``DeweyCode(...)`` construction to an
LCA hot loop) must fail the lint.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisError,
    Diagnostic,
    format_diagnostics,
    get_rule,
    rule_names,
    run_analysis,
)
from repro.analysis.pragmas import parse_pragmas

REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------- #
# Harness
# ---------------------------------------------------------------------- #
def lint(tmp_path, files, paths=("src",), rules=None):
    """Run the analysis over a throwaway mini-project."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'mini'\n")
    for relpath, content in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(content))
    return run_analysis([str(tmp_path / p) for p in paths],
                        rules=rules, root=tmp_path)


def rules_of(diagnostics):
    return sorted({d.rule for d in diagnostics})


#: A minimal parity anchor that satisfies the registration rule.
PARITY_ANCHOR = """
    BACKENDS = ("memory", "memory-object")
    PARITY_SOURCES = {
        "MiniSource": ("memory", "memory-object"),
    }
"""

#: A source class that structurally implements PostingSource.
MINI_SOURCE = """
    class MiniSource:
        source_id = "memory"

        def postings(self, keyword):
            return ()

        def keyword_nodes(self, query):
            return {}

        def frequency(self, keyword):
            return 0

        def vocabulary(self):
            return []

        def node_label(self, dewey):
            return None

        def node_words(self, dewey):
            return frozenset()
"""


# ---------------------------------------------------------------------- #
# Pragmas
# ---------------------------------------------------------------------- #
class TestPragmas:
    def test_same_line_allow(self):
        index = parse_pragmas("x = 1  # lint: allow(some-rule)\n")
        assert index.allows(1, "some-rule")
        assert not index.allows(1, "other-rule")
        assert not index.allows(2, "some-rule")

    def test_standalone_comment_covers_next_line(self):
        index = parse_pragmas("# lint: allow(some-rule)\nx = 1\n")
        assert index.allows(1, "some-rule")
        assert index.allows(2, "some-rule")

    def test_multiple_rules_and_wildcard(self):
        index = parse_pragmas("x = 1  # lint: allow(rule-a, rule-b)\n"
                              "y = 2  # lint: allow(*)\n")
        assert index.allows(1, "rule-a")
        assert index.allows(1, "rule-b")
        assert index.allows(2, "anything-at-all")

    def test_file_level_allow(self):
        index = parse_pragmas("# lint: allow-file(noisy-rule)\n"
                              "x = 1\n" * 5)
        assert index.allows(1, "noisy-rule")
        assert index.allows(99, "noisy-rule")
        assert not index.allows(1, "other-rule")

    def test_pragma_inside_string_does_not_count(self):
        index = parse_pragmas('x = "# lint: allow(some-rule)"\n')
        assert not index.allows(1, "some-rule")


# ---------------------------------------------------------------------- #
# Engine / CLI surface
# ---------------------------------------------------------------------- #
class TestEngine:
    def test_unknown_rule_raises(self):
        with pytest.raises(AnalysisError):
            get_rule("no-such-rule")

    def test_registry_lists_the_seven_rules(self):
        assert rule_names() == [
            "bench-honesty", "exception-discipline", "hot-loop-purity",
            "metrics-discipline", "parity-registration", "sqlite-discipline",
            "typed-errors",
        ]

    def test_missing_path_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        with pytest.raises(AnalysisError):
            run_analysis([str(tmp_path / "nowhere")], root=tmp_path)

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/broken.py": "def f(:\n",
        })
        assert [d.rule for d in diagnostics] == ["syntax"]

    def test_diagnostics_render_path_line_col_rule(self):
        diagnostic = Diagnostic(path="src/x.py", line=3, col=4,
                                rule="some-rule", message="boom")
        assert diagnostic.render() == "src/x.py:3:4: some-rule: boom"
        assert "src/x.py:3:4" in format_diagnostics([diagnostic])


# ---------------------------------------------------------------------- #
# R1: hot-loop purity
# ---------------------------------------------------------------------- #
class TestHotLoopPurity:
    def test_dewey_construction_in_hot_module_fails(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/lca/algo.py": """
                def decode(components_list):
                    return [DeweyCode(c) for c in components_list]
            """,
        }, rules=["hot-loop-purity"])
        assert rules_of(diagnostics) == ["hot-loop-purity"]
        assert "DeweyCode materialization" in diagnostics[0].message

    def test_constructor_alias_is_caught(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/lca/algo.py": """
                from_tuple = DeweyCode._from_tuple

                def decode(components_list):
                    return [from_tuple(c) for c in components_list]
            """,
        }, rules=["hot-loop-purity"])
        assert rules_of(diagnostics) == ["hot-loop-purity"]

    def test_components_access_in_loop_fails(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/lca/algo.py": """
                def depths(codes):
                    total = 0
                    for code in codes:
                        total += len(code.components)
                    return total
            """,
        }, rules=["hot-loop-purity"])
        assert any(".components" in d.message for d in diagnostics)

    def test_loop_invariant_column_lookup_fails(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/lca/algo.py": """
                def scan(plist, n):
                    total = 0
                    for i in range(n):
                        total += plist.data[i]
                    return total
            """,
        }, rules=["hot-loop-purity"])
        assert any("hoist" in d.message for d in diagnostics)

    def test_hoisted_columns_pass(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/lca/algo.py": """
                def scan(plist):
                    data, offsets = plist.data, plist.offsets
                    total = 0
                    for i in range(len(offsets) - 1):
                        total += data[offsets[i]]
                    return total
            """,
        }, rules=["hot-loop-purity"])
        assert diagnostics == []

    def test_loop_variable_column_access_passes(self, tmp_path):
        # `plist` is the loop variable: `.data` is NOT loop-invariant.
        diagnostics = lint(tmp_path, {
            "src/repro/lca/algo.py": """
                def sizes(plists):
                    return [len(plist.data) for plist in plists]
            """,
        }, rules=["hot-loop-purity"])
        assert diagnostics == []

    def test_cold_module_is_not_checked(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/bench/report.py": """
                def decode(components_list):
                    return [DeweyCode(c) for c in components_list]
            """,
        }, rules=["hot-loop-purity"])
        assert diagnostics == []

    def test_pragma_declares_a_result_boundary(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/lca/algo.py": """
                def decode(components_list):
                    # lint: allow(hot-loop-purity) result boundary
                    return [DeweyCode(c) for c in components_list]
            """,
        }, rules=["hot-loop-purity"])
        assert diagnostics == []


# ---------------------------------------------------------------------- #
# R2: parity registration
# ---------------------------------------------------------------------- #
class TestParityRegistration:
    def test_registered_implementor_passes(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "tests/test_backend_parity.py": PARITY_ANCHOR,
            "src/repro/index/mini.py": MINI_SOURCE,
        }, rules=["parity-registration"])
        assert diagnostics == []

    def test_unregistered_implementor_fails(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "tests/test_backend_parity.py": """
                BACKENDS = ("memory",)
                PARITY_SOURCES = {"Ghost": ("memory",)}
            """,
            "src/repro/index/mini.py": MINI_SOURCE,
        }, rules=["parity-registration"])
        assert any("MiniSource" in d.message and "not registered" in d.message
                   for d in diagnostics)

    def test_deleting_a_backend_entry_fails(self, tmp_path):
        # The acceptance regression: drop "memory-object" from BACKENDS
        # while PARITY_SOURCES still claims it.
        diagnostics = lint(tmp_path, {
            "tests/test_backend_parity.py": """
                BACKENDS = ("memory",)
                PARITY_SOURCES = {
                    "MiniSource": ("memory", "memory-object"),
                }
            """,
            "src/repro/index/mini.py": MINI_SOURCE,
        }, rules=["parity-registration"])
        assert any("not in BACKENDS" in d.message for d in diagnostics)

    def test_unclaimed_backend_fails(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "tests/test_backend_parity.py": """
                BACKENDS = ("memory", "orphan")
                PARITY_SOURCES = {"MiniSource": ("memory",)}
            """,
            "src/repro/index/mini.py": MINI_SOURCE,
        }, rules=["parity-registration"])
        assert any("'orphan'" in d.message and "not claimed" in d.message
                   for d in diagnostics)

    def test_missing_registry_fails(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "tests/test_backend_parity.py": "BACKENDS = ('memory',)\n",
            "src/repro/index/mini.py": MINI_SOURCE,
        }, rules=["parity-registration"])
        assert any("PARITY_SOURCES mapping not found" in d.message
                   for d in diagnostics)

    def test_protocol_class_itself_is_exempt(self, tmp_path):
        protocol_class = MINI_SOURCE.replace(
            "class MiniSource:", "class MiniSource(Protocol):")
        diagnostics = lint(tmp_path, {
            "tests/test_backend_parity.py": """
                BACKENDS = ("memory",)
                PARITY_SOURCES = {"Other": ("memory",)}
            """,
            "src/repro/index/mini.py": protocol_class,
        }, rules=["parity-registration"])
        assert not any("MiniSource" in d.message for d in diagnostics)

    def test_pragma_suppresses_registration(self, tmp_path):
        suppressed = MINI_SOURCE.replace(
            "class MiniSource:",
            "# lint: allow(parity-registration)\nclass MiniSource:")
        diagnostics = lint(tmp_path, {
            "tests/test_backend_parity.py": """
                BACKENDS = ("memory",)
                PARITY_SOURCES = {"Other": ("memory",)}
            """,
            "src/repro/index/mini.py": suppressed,
        }, rules=["parity-registration"])
        assert not any("MiniSource" in d.message for d in diagnostics)


# ---------------------------------------------------------------------- #
# R3: typed-error discipline
# ---------------------------------------------------------------------- #
MINI_PROTOCOL = """
    ERROR_BAD_REQUEST = "bad_request"
    ERROR_INTERNAL = "internal"
"""

MINI_SERVICE_ANCHOR = """
    def test_ping_and_search(client):
        assert client.ping()
        assert client.search("xml")
"""


class TestTypedErrors:
    def lint_server(self, tmp_path, server_body, anchor=MINI_SERVICE_ANCHOR):
        return lint(tmp_path, {
            "src/repro/service/protocol.py": MINI_PROTOCOL,
            "src/repro/service/server.py": server_body,
            "tests/test_service_parity.py": anchor,
        }, rules=["typed-errors"])

    def test_typed_raises_and_tested_ops_pass(self, tmp_path):
        diagnostics = self.lint_server(tmp_path, """
            class SearchService:
                async def _dispatch(self, request):
                    op = request.get("op", "search")
                    if op == "ping":
                        return {"pong": True}
                    if op == "search":
                        return {"result": None}
                    raise ServiceError(ERROR_BAD_REQUEST, "unknown op")
        """)
        assert diagnostics == []

    def test_untyped_raise_fails(self, tmp_path):
        diagnostics = self.lint_server(tmp_path, """
            class SearchService:
                async def _dispatch(self, request):
                    op = request.get("op", "search")
                    if op == "search":
                        return {}
                    raise ValueError("boom")
        """)
        assert any("must raise ServiceError" in d.message
                   for d in diagnostics)

    def test_literal_error_code_fails(self, tmp_path):
        diagnostics = self.lint_server(tmp_path, """
            class SearchService:
                async def _dispatch(self, request):
                    op = request.get("op", "search")
                    if op == "search":
                        return {}
                    raise ServiceError("bad_request", "unknown op")
        """)
        assert any("literal code" in d.message for d in diagnostics)

    def test_unknown_error_constant_fails(self, tmp_path):
        diagnostics = self.lint_server(tmp_path, """
            class SearchService:
                async def _dispatch(self, request):
                    op = request.get("op", "search")
                    if op == "search":
                        return {}
                    raise ServiceError(ERROR_MADE_UP, "unknown op")
        """)
        assert any("not defined in" in d.message for d in diagnostics)

    def test_untested_op_fails(self, tmp_path):
        diagnostics = self.lint_server(tmp_path, """
            class SearchService:
                async def _dispatch(self, request):
                    op = request.get("op", "search")
                    if op == "search":
                        return {}
                    if op == "teleport":
                        return {}
                    raise ServiceError(ERROR_BAD_REQUEST, "unknown op")
        """)
        assert any("'teleport'" in d.message
                   and "no matching case" in d.message for d in diagnostics)

    def test_op_mentioned_as_attribute_counts(self, tmp_path):
        # client.teleport() in the anchor covers op "teleport".
        diagnostics = self.lint_server(tmp_path, """
            class SearchService:
                async def _dispatch(self, request):
                    op = request.get("op", "search")
                    if op == "search":
                        return {}
                    if op == "teleport":
                        return {}
                    raise ServiceError(ERROR_BAD_REQUEST, "unknown op")
        """, anchor=MINI_SERVICE_ANCHOR + """
    def test_teleport(client):
        assert client.teleport()
""")
        assert diagnostics == []

    def test_pragma_suppresses_raise_finding(self, tmp_path):
        diagnostics = self.lint_server(tmp_path, """
            class SearchService:
                async def _dispatch(self, request):
                    op = request.get("op", "search")
                    if op == "search":
                        return {}
                    # lint: allow(typed-errors)
                    raise ValueError("boom")
        """)
        assert diagnostics == []


# ---------------------------------------------------------------------- #
# R4: sqlite discipline
# ---------------------------------------------------------------------- #
class TestSqliteDiscipline:
    def test_connect_inside_storage_passes(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/storage/db.py": """
                import sqlite3
                import threading

                class Store:
                    def _connection(self, path):
                        local = threading.local()
                        connection = sqlite3.connect(path)
                        local.connection = connection
                        return connection
            """,
        }, rules=["sqlite-discipline"])
        assert diagnostics == []

    def test_connect_outside_storage_fails(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/service/shortcut.py": """
                import sqlite3

                def query(path):
                    return sqlite3.connect(path)
            """,
        }, rules=["sqlite-discipline"])
        assert any("outside repro/storage/" in d.message for d in diagnostics)

    def test_aliased_connect_is_caught(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/service/shortcut.py": """
                from sqlite3 import connect as open_db

                def query(path):
                    return open_db(path)
            """,
        }, rules=["sqlite-discipline"])
        assert any("outside repro/storage/" in d.message for d in diagnostics)

    def test_self_held_connection_fails_even_in_storage(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/storage/db.py": """
                import sqlite3

                class Store:
                    def __init__(self, path):
                        self.connection = sqlite3.connect(path)
            """,
        }, rules=["sqlite-discipline"])
        assert any("self.connection" in d.message for d in diagnostics)

    def test_pragma_suppresses_connect_finding(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/service/shortcut.py": """
                import sqlite3

                def query(path):
                    return sqlite3.connect(path)  # lint: allow(sqlite-discipline)
            """,
        }, rules=["sqlite-discipline"])
        assert diagnostics == []


# ---------------------------------------------------------------------- #
# R5: bench honesty
# ---------------------------------------------------------------------- #
class TestBenchHonesty:
    def test_unguarded_bench_writer_fails(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/bench/w.py": """
                def persist(payload):
                    write_json(payload, "BENCH_core.json")
            """,
        }, rules=["bench-honesty"])
        assert any("without calling a verification guard" in d.message
                   for d in diagnostics)

    def test_guarded_bench_writer_passes(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/bench/w.py": """
                def persist(payload):
                    require_verified_payload(payload)
                    write_json(payload, "BENCH_core.json")
            """,
        }, rules=["bench-honesty"])
        assert diagnostics == []

    def test_non_bench_writer_is_ignored(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/bench/w.py": """
                def persist(payload):
                    write_json(payload, "notes.json")
            """,
        }, rules=["bench-honesty"])
        assert diagnostics == []

    def test_pragma_suppresses_writer_finding(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/bench/w.py": """
                # lint: allow(bench-honesty)
                def persist(payload):
                    write_json(payload, "BENCH_core.json")
            """,
        }, rules=["bench-honesty"])
        assert diagnostics == []


# ---------------------------------------------------------------------- #
# R6: metrics discipline
# ---------------------------------------------------------------------- #

#: A mini metric-name catalogue at the anchor path the rule validates against.
MINI_CATALOGUE = """
    QUERY_COUNT = "query.count"
    CACHE_HITS = "cache.hits"
"""


class TestMetricsDiscipline:
    def lint_obs(self, tmp_path, body, catalogue=MINI_CATALOGUE):
        files = {"src/repro/service/s.py": body}
        if catalogue is not None:
            files["src/repro/obs/names.py"] = catalogue
        return lint(tmp_path, files, rules=["metrics-discipline"])

    def test_free_string_metric_name_fails(self, tmp_path):
        diagnostics = self.lint_obs(tmp_path, """
            def handle(registry):
                registry.counter("query.count").inc()
        """)
        assert any("free-string metric name 'query.count'" in d.message
                   for d in diagnostics)

    def test_catalogue_constant_passes(self, tmp_path):
        diagnostics = self.lint_obs(tmp_path, """
            from ..obs import names as metric_names

            def handle(registry, miss):
                registry.counter(metric_names.QUERY_COUNT).inc()
                registry.histogram(
                    metric_names.CACHE_HITS if miss else CACHE_HITS)
        """)
        assert diagnostics == []

    def test_unknown_name_expression_fails(self, tmp_path):
        diagnostics = self.lint_obs(tmp_path, """
            def handle(registry, key):
                registry.gauge(key.upper()).set(1)
        """)
        assert any("does not reference a" in d.message for d in diagnostics)

    def test_missing_name_argument_fails(self, tmp_path):
        diagnostics = self.lint_obs(tmp_path, """
            def handle(registry):
                registry.counter().inc()
        """)
        assert any("without a metric name" in d.message for d in diagnostics)

    def test_missing_catalogue_is_one_finding(self, tmp_path):
        diagnostics = self.lint_obs(tmp_path, """
            def handle(registry):
                registry.counter(NAME).inc()
        """, catalogue=None)
        assert [d for d in diagnostics
                if "missing or unparsable" in d.message]

    def test_obs_package_itself_is_exempt(self, tmp_path):
        diagnostics = lint(tmp_path, {
            "src/repro/obs/names.py": MINI_CATALOGUE,
            "src/repro/obs/registry.py": """
                def warm(registry):
                    registry.counter("query.count")
            """,
        }, rules=["metrics-discipline"])
        assert diagnostics == []

    def test_pragma_suppresses_finding(self, tmp_path):
        diagnostics = self.lint_obs(tmp_path, """
            def handle(registry, name):
                registry.counter(name).inc()  # lint: allow(metrics-discipline)
        """)
        assert diagnostics == []


# ---------------------------------------------------------------------- #
# R7: exception discipline
# ---------------------------------------------------------------------- #
class TestExceptionDiscipline:
    def lint_src(self, tmp_path, body):
        return lint(tmp_path, {"src/repro/service/s.py": body},
                    rules=["exception-discipline"])

    def test_bare_except_fails(self, tmp_path):
        diagnostics = self.lint_src(tmp_path, """
            def read(path):
                try:
                    return open(path).read()
                except:
                    return ""
        """)
        assert any("bare 'except:'" in d.message for d in diagnostics)

    def test_swallowed_broad_catch_fails(self, tmp_path):
        diagnostics = self.lint_src(tmp_path, """
            def tick(store):
                try:
                    store.compact()
                except Exception:
                    pass
        """)
        assert any("'except Exception' swallows" in d.message
                   for d in diagnostics)

    def test_broad_catch_in_tuple_fails(self, tmp_path):
        diagnostics = self.lint_src(tmp_path, """
            def tick(store):
                try:
                    store.compact()
                except (ValueError, BaseException):
                    return None
        """)
        assert any("'except BaseException' swallows" in d.message
                   for d in diagnostics)

    def test_reraising_broad_catch_passes(self, tmp_path):
        diagnostics = self.lint_src(tmp_path, """
            def tick(store, log):
                try:
                    store.compact()
                except Exception as error:
                    log(error)
                    raise
        """)
        assert diagnostics == []

    def test_specific_catch_passes(self, tmp_path):
        diagnostics = self.lint_src(tmp_path, """
            def read(path):
                try:
                    return open(path).read()
                except (OSError, ValueError):
                    return ""
        """)
        assert diagnostics == []

    def test_pragma_suppresses_finding(self, tmp_path):
        diagnostics = self.lint_src(tmp_path, """
            def tick(store):
                try:
                    store.compact()
                except Exception:  # lint: allow(exception-discipline)
                    pass
        """)
        assert diagnostics == []

    def test_raise_inside_nested_handler_counts(self, tmp_path):
        # A raise anywhere in the handler body (even conditional) is a
        # deliberate decision; the rule only hunts silent swallows.
        diagnostics = self.lint_src(tmp_path, """
            def tick(store, fatal):
                try:
                    store.compact()
                except Exception as error:
                    if fatal(error):
                        raise
                    return None
        """)
        assert diagnostics == []


# ---------------------------------------------------------------------- #
# The real tree
# ---------------------------------------------------------------------- #
class TestRealTree:
    def test_src_is_clean(self):
        diagnostics = run_analysis([str(REPO_ROOT / "src")], root=REPO_ROOT)
        assert diagnostics == [], format_diagnostics(diagnostics)

    def test_cli_exits_zero_on_clean_tree(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0, completed.stderr

    def test_cli_lists_rules(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0
        for name in rule_names():
            assert name in completed.stdout

    def test_adding_boxed_code_to_stack_slca_fails(self, tmp_path):
        # The acceptance regression: a DeweyCode(...) construction added to
        # the real stack SLCA implementation must fail the lint.
        real = (REPO_ROOT / "src/repro/lca/stack_slca.py").read_text()
        mutated = real + (
            "\n\ndef _boxed_probe(components):\n"
            "    return DeweyCode(components)\n"
        )
        diagnostics = lint(tmp_path, {
            "src/repro/lca/stack_slca.py": mutated,
        }, rules=["hot-loop-purity"])
        assert any("DeweyCode materialization" in d.message
                   and d.line > real.count("\n")
                   for d in diagnostics)

    def test_deleting_real_backend_entry_fails(self, tmp_path):
        # Drop "sqlite" from the real anchor's BACKENDS: the registered
        # sqlite sources now claim a nonexistent backend.
        real = (REPO_ROOT / "tests/test_backend_parity.py").read_text()
        mutated = real.replace('"sqlite", ', "", 1)
        assert mutated != real, "expected a BACKENDS entry to remove"
        diagnostics = lint(tmp_path, {
            "tests/test_backend_parity.py": mutated,
            "src/repro/placeholder.py": "",
        }, rules=["parity-registration"])
        assert any("'sqlite'" in d.message and "not in BACKENDS" in d.message
                   for d in diagnostics)
