"""Backend parity: every posting backend must answer exactly like memory.

This is the repo's cross-backend transparency contract: the paper-example
documents and a synthetic corpus are searched through the in-memory inverted
index, the disk-backed sqlite source and the sharded source, and the complete
:class:`SearchResult` — roots, kept node sets, SLCA flags, LCA node list —
must be identical for all four algorithms.  **Any new backend must be added
to ``BACKENDS`` here and pass unchanged** (see ROADMAP, Open items).

The sqlite and sharded engines deliberately run *without* a resident tree, so
this suite also proves the purely source-backed pipeline (Dewey-arithmetic
fragments, lookup-driven record trees) against the tree-backed one.

The plain backend names serve the default **packed** columnar posting
representation; the ``-object`` variants serve boxed ``DeweyCode`` lists, so
the matrix also enforces packed ↔ object representation parity on every
backend (the memory reference engine is packed).
"""

from __future__ import annotations

import pytest

from repro.core import ALGORITHM_NAMES, SearchEngine
from repro.corpus import CorpusSearchEngine
from repro.datasets import PAPER_QUERIES
from repro.storage import (
    MemoryStore,
    SegmentedPostingSource,
    SegmentedStore,
    ShardedPostingSource,
    SQLitePostingSource,
    SQLiteStore,
    StorePostingSource,
    source_for_store,
)

BACKENDS = ("memory", "sqlite", "sharded", "corpus", "segmented",
            "memory-object", "sqlite-object", "sharded-object",
            "corpus-object", "segmented-object")

#: The registration contract the lint gate (``parity-registration``)
#: machine-checks: every class in ``src/`` that implements the
#: ``PostingSource`` protocol must appear here, mapped to the ``BACKENDS``
#: entries it serves, and together the entries must cover all of BACKENDS.
PARITY_SOURCES = {
    "InvertedIndex": ("memory", "memory-object"),
    "StorePostingSource": ("sqlite", "sqlite-object"),
    "SQLitePostingSource": ("sqlite", "sqlite-object"),
    "ShardedPostingSource": ("sharded", "sharded-object"),
    "CorpusPostingSource": ("corpus", "corpus-object"),
    "SegmentedPostingSource": ("segmented", "segmented-object"),
}

#: (dataset fixture name, queries) pairs the parity matrix runs over.
DATASETS = (
    ("publications", ("Q1", "Q2", "Q3")),
    ("team", ("Q4", "Q5")),
)

SMALL_DBLP_QUERIES = ("xml keyword", "data algorithm", "tree query pattern")


def build_engine(tree, backend: str, name: str = "doc") -> SearchEngine:
    """An engine over ``tree`` for one backend (tree-free for disk backends)."""
    kind, _, variant = backend.partition("-")
    representation = variant or "packed"
    if kind == "memory":
        return SearchEngine(tree, representation=representation)
    if kind == "sqlite":
        store = SQLiteStore()
        store.store_tree(tree, name)
        return SearchEngine(source=SQLitePostingSource(
            store, name, representation=representation))
    if kind == "sharded":
        return SearchEngine(source=ShardedPostingSource.from_tree(
            tree, shard_count=3, name=name, representation=representation))
    if kind == "corpus":
        # A one-document corpus over disk-backed per-document stores: the
        # corpus answer must equal the single-document answer exactly (the
        # union of one document is that document's result).
        return CorpusSearchEngine.from_trees(
            {name: tree}, backend="sqlite", representation=representation,
            shard_count=2)
    if kind == "segmented":
        # Store the tree, then shadow the base copy with an identical
        # delta-segment version: parity runs through the segment read path
        # (segment_posting / segment_value / segment_element), not just the
        # base-generation routing that mirrors plain sqlite.
        store = SegmentedStore()
        store.store_tree(tree, name)
        store.update_document(tree, name)
        return SearchEngine(source=SegmentedPostingSource(
            store, name, representation=representation))
    raise ValueError(backend)


@pytest.fixture(scope="module")
def engines(publications, team, small_dblp):
    """One engine per (dataset, backend) pair, built once per module."""
    trees = {"publications": publications, "team": team,
             "small_dblp": small_dblp}
    return {(dataset, backend): build_engine(tree, backend, dataset)
            for dataset, tree in trees.items()
            for backend in BACKENDS}


def assert_same_result(reference, candidate, context):
    """Full-fidelity SearchResult comparison (everything but timings)."""
    assert reference.query == candidate.query, context
    assert [str(c) for c in reference.lca_nodes] == \
        [str(c) for c in candidate.lca_nodes], context
    assert reference.roots() == candidate.roots(), context
    assert [f.kept_nodes for f in reference] == \
        [f.kept_nodes for f in candidate], context
    assert [f.is_slca for f in reference] == \
        [f.is_slca for f in candidate], context
    assert [f.fragment.nodes for f in reference] == \
        [f.fragment.nodes for f in candidate], context
    assert [f.fragment.keyword_nodes for f in reference] == \
        [f.fragment.keyword_nodes for f in candidate], context


# ---------------------------------------------------------------------- #
# The parity matrix: paper examples x algorithms x backends
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "memory"])
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
@pytest.mark.parametrize("dataset,query_names", DATASETS)
def test_paper_examples_identical_across_backends(engines, dataset, query_names,
                                                  algorithm, backend):
    reference_engine = engines[(dataset, "memory")]
    candidate_engine = engines[(dataset, backend)]
    for query_name in query_names:
        query = PAPER_QUERIES[query_name]
        reference = reference_engine.search(query, algorithm)
        candidate = candidate_engine.search(query, algorithm)
        assert_same_result(reference, candidate,
                           (dataset, query_name, algorithm, backend))


@pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "memory"])
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_synthetic_corpus_identical_across_backends(engines, algorithm, backend):
    reference_engine = engines[("small_dblp", "memory")]
    candidate_engine = engines[("small_dblp", backend)]
    for query in SMALL_DBLP_QUERIES:
        reference = reference_engine.search(query, algorithm)
        candidate = candidate_engine.search(query, algorithm)
        assert_same_result(reference, candidate,
                           ("small_dblp", query, algorithm, backend))


@pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "memory"])
def test_batch_search_parity(engines, backend):
    """search_many (the batched union fetch) agrees with looped search."""
    reference_engine = engines[("publications", "memory")]
    candidate_engine = engines[("publications", backend)]
    queries = [PAPER_QUERIES[name] for name in ("Q1", "Q2", "Q3")]
    batched = candidate_engine.search_many(queries, "validrtf")
    for query, candidate in zip(queries, batched):
        assert_same_result(reference_engine.search(query, "validrtf"),
                           candidate, (query, backend))


# ---------------------------------------------------------------------- #
# Posting-list agreement (the promoted agreement_with_index fixture)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("store_class", [MemoryStore, SQLiteStore])
def test_store_postings_agree_with_index(store_agreement, publications,
                                         store_class):
    store = store_class()
    store.store_tree(publications, "pub")
    store_agreement(publications, store, "pub",
                    ["xml", "keyword", "search", "liu", "vldb", "title",
                     "article", "absentkeyword"])


@pytest.mark.parametrize("store_class", [MemoryStore, SQLiteStore,
                                         SegmentedStore])
def test_source_for_store_picks_specialization(publications, store_class):
    store = store_class()
    store.store_tree(publications, "pub")
    source = source_for_store(store, "pub")
    assert isinstance(source, StorePostingSource)
    assert isinstance(source, SQLitePostingSource) == \
        isinstance(store, SQLiteStore)
    # The segmented store must get the liveness-aware source (its cache
    # identity carries the document's segment generation).
    assert isinstance(source, SegmentedPostingSource) == \
        isinstance(store, SegmentedStore)


# ---------------------------------------------------------------------- #
# The registration contract itself
# ---------------------------------------------------------------------- #
def test_parity_sources_cover_backends():
    """PARITY_SOURCES names real PostingSource classes and covers BACKENDS."""
    from repro.corpus.source import CorpusPostingSource
    from repro.index import InvertedIndex

    classes = {
        "InvertedIndex": InvertedIndex,
        "StorePostingSource": StorePostingSource,
        "SQLitePostingSource": SQLitePostingSource,
        "ShardedPostingSource": ShardedPostingSource,
        "CorpusPostingSource": CorpusPostingSource,
        "SegmentedPostingSource": SegmentedPostingSource,
    }
    assert set(classes) == set(PARITY_SOURCES)
    protocol_members = ("source_id", "postings", "keyword_nodes", "frequency",
                        "vocabulary", "node_label", "node_words")
    claimed = set()
    for name, entries in PARITY_SOURCES.items():
        for member in protocol_members:
            assert hasattr(classes[name], member), (name, member)
        assert entries, name
        for entry in entries:
            assert entry in BACKENDS, (name, entry)
        claimed.update(entries)
    assert claimed == set(BACKENDS)


# ---------------------------------------------------------------------- #
# Cache keys carry backend identity
# ---------------------------------------------------------------------- #
def test_backend_ids_are_distinct(engines):
    ids = {backend: engines[("publications", backend)].backend_id
           for backend in BACKENDS}
    # The five backend *kinds* must never share cache identity...
    assert len({ids["memory"], ids["sqlite"], ids["sharded"],
                ids["corpus"], ids["segmented"]}) == 5
    # ...while the representation variants of one kind answer byte-identically
    # (that is this suite's parity guarantee), so they deliberately share it.
    for kind in ("memory", "sqlite", "sharded", "corpus", "segmented"):
        assert ids[f"{kind}-object"] == ids[kind]


def test_cached_results_keyed_by_backend(publications):
    """Identical queries on different backends never share cache entries."""
    store = SQLiteStore()
    store.store_tree(publications, "pub")
    memory_engine = SearchEngine(publications, cache_size=8)
    sqlite_engine = SearchEngine(source=SQLitePostingSource(store, "pub"),
                                 cache_size=8)
    query = PAPER_QUERIES["Q2"]
    memory_result = memory_engine.search(query)
    sqlite_result = sqlite_engine.search(query)
    # Both engines miss then hit within themselves...
    assert memory_engine.search(query) is memory_result
    assert sqlite_engine.search(query) is sqlite_result
    # ...and their keys differ, so a hypothetical shared cache cannot mix them.
    from repro.core import Query, QueryResultCache
    parsed = Query.parse(query)
    memory_key = QueryResultCache.key_for("validrtf", parsed, "minmax",
                                          memory_engine.backend_id)
    sqlite_key = QueryResultCache.key_for("validrtf", parsed, "minmax",
                                          sqlite_engine.backend_id)
    assert memory_key != sqlite_key


# ---------------------------------------------------------------------- #
# The deprecation shim still answers through the engine path
# ---------------------------------------------------------------------- #
def test_stored_document_search_is_a_shim(publications, publications_engine):
    from repro.storage import StoredDocumentSearch, StoreQuerySession

    assert StoreQuerySession is StoredDocumentSearch
    with pytest.warns(DeprecationWarning):
        import repro.storage.query as legacy
        legacy._DEPRECATION_EMITTED = False  # the warning fires once per run
        shim = StoredDocumentSearch(publications, SQLiteStore(), "pub")
    result = shim.search(PAPER_QUERIES["Q2"], "validrtf")
    assert result.algorithm == "validrtf@store"
    reference = publications_engine.search(PAPER_QUERIES["Q2"], "validrtf")
    assert result.roots() == reference.roots()
    assert [f.kept_set() for f in result] == [f.kept_set() for f in reference]
